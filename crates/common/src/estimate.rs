//! The result of an approximate query.

/// An approximate query answer together with its uncertainty and the
/// accounting the Section 5 metrics need (skip rate, effective sample size).
#[derive(Debug, Clone)]
pub struct Estimate {
    /// The point estimate of the aggregate.
    pub value: f64,
    /// Half-width of the λ-confidence interval (already multiplied by λ).
    /// Zero for exactly-answered queries.
    pub ci_half: f64,
    /// Deterministic hard bounds `(lb, ub)` when the engine can provide them
    /// (PASS can, via the partition extrema — Section 2.3; pure sampling
    /// engines cannot).
    pub hard_bounds: Option<(f64, f64)>,
    /// Sample/aggregate tuples actually touched while answering — the paper's
    /// "effective sample size" numerator (Section 5.1.4).
    pub tuples_processed: u64,
    /// Tuples safely skipped thanks to covered/irrelevant partitions — the
    /// numerator of the skip rate metric.
    pub tuples_skipped: u64,
    /// True when the answer is exact (query aligned with the partitioning).
    pub exact: bool,
}

/// Equality compares the floating-point fields by **bit pattern**, not by
/// IEEE `==`: the bit-identity contracts (layered serving paths, snapshot
/// round trips) need `NaN == NaN` to hold for identical payloads and
/// `0.0 != -0.0` to be distinguishable — the derived float comparison
/// would get both wrong, asymmetrically for NaN.
impl PartialEq for Estimate {
    fn eq(&self, other: &Self) -> bool {
        let bounds_eq = match (self.hard_bounds, other.hard_bounds) {
            (None, None) => true,
            (Some((a_lo, a_hi)), Some((b_lo, b_hi))) => {
                a_lo.to_bits() == b_lo.to_bits() && a_hi.to_bits() == b_hi.to_bits()
            }
            _ => false,
        };
        self.value.to_bits() == other.value.to_bits()
            && self.ci_half.to_bits() == other.ci_half.to_bits()
            && bounds_eq
            && self.tuples_processed == other.tuples_processed
            && self.tuples_skipped == other.tuples_skipped
            && self.exact == other.exact
    }
}

impl Eq for Estimate {}

impl Estimate {
    /// An exact answer: no CI, degenerate hard bounds.
    pub fn exact(value: f64) -> Self {
        Self {
            value,
            ci_half: 0.0,
            hard_bounds: Some((value, value)),
            tuples_processed: 0,
            tuples_skipped: 0,
            exact: true,
        }
    }

    /// A sampled answer with a CI half-width.
    pub fn approximate(value: f64, ci_half: f64) -> Self {
        Self {
            value,
            ci_half,
            hard_bounds: None,
            tuples_processed: 0,
            tuples_skipped: 0,
            exact: false,
        }
    }

    /// Builder-style accounting attachment.
    pub fn with_accounting(mut self, processed: u64, skipped: u64) -> Self {
        self.tuples_processed = processed;
        self.tuples_skipped = skipped;
        self
    }

    /// Builder-style hard-bound attachment.
    pub fn with_hard_bounds(mut self, lb: f64, ub: f64) -> Self {
        debug_assert!(lb <= ub, "hard bounds inverted: {lb} > {ub}");
        self.hard_bounds = Some((lb, ub));
        self
    }

    /// The confidence interval as `(lo, hi)`.
    pub fn ci(&self) -> (f64, f64) {
        (self.value - self.ci_half, self.value + self.ci_half)
    }

    /// Relative error against a known ground truth; uses the paper's metric
    /// |est − truth| / |truth|. A zero truth makes the ratio undefined, so
    /// the result is pinned to a defined value instead of NaN: 0 when the
    /// estimate matches exactly, `f64::INFINITY` otherwise (any nonzero
    /// estimate of a zero truth is infinitely wrong in relative terms).
    pub fn relative_error(&self, truth: f64) -> f64 {
        if truth == 0.0 {
            return if self.value == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        (self.value - truth).abs() / truth.abs()
    }

    /// CI ratio against ground truth: half-CI / |truth| (Section 5.1.2).
    /// A zero truth pins the undefined ratio to 0 for a zero-width CI and
    /// `f64::INFINITY` otherwise, mirroring
    /// [`relative_error`](Self::relative_error).
    pub fn ci_ratio(&self, truth: f64) -> f64 {
        if truth == 0.0 {
            return if self.ci_half == 0.0 {
                0.0
            } else {
                f64::INFINITY
            };
        }
        self.ci_half / truth.abs()
    }

    /// Skip rate: skipped / (skipped + processed); 0 when nothing was seen.
    pub fn skip_rate(&self) -> f64 {
        let total = self.tuples_processed + self.tuples_skipped;
        if total == 0 {
            0.0
        } else {
            self.tuples_skipped as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_estimates_have_zero_uncertainty() {
        let e = Estimate::exact(42.0);
        assert!(e.exact);
        assert_eq!(e.ci_half, 0.0);
        assert_eq!(e.hard_bounds, Some((42.0, 42.0)));
        assert_eq!(e.ci(), (42.0, 42.0));
        assert_eq!(e.relative_error(42.0), 0.0);
    }

    #[test]
    fn ci_is_symmetric() {
        let e = Estimate::approximate(10.0, 1.5);
        assert_eq!(e.ci(), (8.5, 11.5));
        assert!(!e.exact);
    }

    #[test]
    fn relative_error_and_ci_ratio() {
        let e = Estimate::approximate(11.0, 2.0);
        assert!((e.relative_error(10.0) - 0.1).abs() < 1e-12);
        assert!((e.ci_ratio(10.0) - 0.2).abs() < 1e-12);
        // Negative truth uses |truth|.
        assert!((e.relative_error(-10.0) - 2.1).abs() < 1e-12);
    }

    #[test]
    fn zero_truth_is_defined_never_nan() {
        // Exact match of a zero truth: zero error, zero CI ratio.
        let exact = Estimate::exact(0.0);
        assert_eq!(exact.relative_error(0.0), 0.0);
        assert_eq!(exact.ci_ratio(0.0), 0.0);
        // A zero point estimate with residual CI: value matches, CI doesn't.
        let zero_with_ci = Estimate::approximate(0.0, 0.5);
        assert_eq!(zero_with_ci.relative_error(0.0), 0.0);
        assert_eq!(zero_with_ci.ci_ratio(0.0), f64::INFINITY);
        // Any nonzero estimate of a zero truth is infinitely wrong.
        let off = Estimate::approximate(0.25, 0.5);
        assert_eq!(off.relative_error(0.0), f64::INFINITY);
        assert_eq!(off.ci_ratio(0.0), f64::INFINITY);
        // Signs don't matter and nothing is ever NaN.
        let neg = Estimate::approximate(-1e-300, 0.0);
        assert_eq!(neg.relative_error(0.0), f64::INFINITY);
        assert_eq!(neg.ci_ratio(0.0), 0.0);
        assert!(!off.relative_error(0.0).is_nan());
        assert!(!off.ci_ratio(0.0).is_nan());
    }

    #[test]
    fn skip_rate_accounting() {
        let e = Estimate::approximate(1.0, 0.1).with_accounting(25, 75);
        assert_eq!(e.skip_rate(), 0.75);
        assert_eq!(e.tuples_processed, 25);
        let none = Estimate::exact(0.0);
        assert_eq!(none.skip_rate(), 0.0);
    }

    #[test]
    fn hard_bounds_builder() {
        let e = Estimate::approximate(5.0, 1.0).with_hard_bounds(0.0, 20.0);
        assert_eq!(e.hard_bounds, Some((0.0, 20.0)));
    }

    #[test]
    fn equality_is_bitwise_on_floats() {
        // NaN fields compare equal to themselves (reflexivity — the derived
        // float == would make an estimate unequal to its own clone).
        let nan = Estimate::approximate(f64::NAN, f64::NAN);
        assert_eq!(nan, nan.clone());
        // Distinct NaN payloads are distinct estimates.
        let other_payload = Estimate::approximate(f64::from_bits(0x7FF8_0000_0000_0001), f64::NAN);
        assert_ne!(nan, other_payload);
        // Signed zeros are distinguishable, unlike IEEE ==.
        let pos = Estimate::approximate(0.0, 0.0);
        let neg = Estimate::approximate(-0.0, 0.0);
        assert_ne!(pos, neg);
        assert_eq!(pos, pos.clone());
        // Hard bounds compare bitwise too.
        let a = Estimate::approximate(1.0, 0.5).with_hard_bounds(-0.0, 2.0);
        let b = Estimate::approximate(1.0, 0.5).with_hard_bounds(0.0, 2.0);
        assert_ne!(a, b);
        assert_eq!(a, a.clone());
    }
}
