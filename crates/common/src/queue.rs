//! A bounded two-priority MPMC queue — the admission-control boundary of
//! the serving layer.
//!
//! `pass::Serve` accepts query submissions from any number of client
//! threads and hands them to a fixed set of workers; the queue between
//! the two is where load shedding happens. [`RequestQueue`] is bounded
//! (a full queue **rejects** the push instead of blocking the client —
//! that is the backpressure signal), has two strict priority classes
//! ([`Priority::Interactive`] always pops before [`Priority::Bulk`]),
//! and tracks the queue-depth high-water mark so saturation is
//! observable after the fact.
//!
//! **Within** a class the pop policy is earliest-deadline-first:
//! [`try_push_scheduled`](RequestQueue::try_push_scheduled) attaches an
//! optional deadline to the item and the queue keeps each class sorted
//! so the most urgent entry is always at the head. Undated entries keep
//! FIFO order *after* every dated one, and two equal deadlines preserve
//! FIFO too, so the plain [`try_push`](RequestQueue::try_push) (no
//! deadline) degrades to exactly the old FIFO-within-class behavior.
//! [`try_push_or_merge`](RequestQueue::try_push_or_merge) is the
//! cross-request dedup hook on top: it folds a submission into an
//! identical queued entry instead of consuming another capacity slot.
//!
//! Like the [`crate::ThreadPool`], this is deliberately dependency-free:
//! one `Mutex` around two `VecDeque`s plus a `Condvar` for blocking
//! consumers. The serving layer's queues hold hundreds of requests, not
//! millions — correctness and observability beat lock-free cleverness
//! here, and that includes the scheduling structure: a sorted `VecDeque`
//! with binary-search insertion beats a heap because the coalescing
//! drain walks entries in schedule order and FIFO ties are free.

use std::collections::VecDeque;

use crate::chaos::{Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// The admission class of a serving request.
///
/// Strict two-level priority: every queued `Interactive` request is
/// popped before any `Bulk` request, and requests within one class pop
/// FIFO. Two classes (not N) is a deliberate serving-layer idiom: a
/// latency-sensitive dashboard query must overtake a queued analytics
/// sweep, and anything finer-grained tends to re-invent deadlines —
/// which the serving layer supports separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Latency-sensitive: pops before every queued [`Bulk`](Self::Bulk)
    /// request.
    Interactive,
    /// Throughput-oriented: yields to interactive traffic.
    Bulk,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — admission control says shed this load.
    Full,
    /// The queue was closed (the serving front-end is shutting down).
    Closed,
}

/// One queued entry plus its earliest-deadline-first key. `key == None`
/// means undated: the entry sorts after every dated one and keeps FIFO
/// order among other undated entries.
#[derive(Debug)]
struct Scheduled<T> {
    item: T,
    key: Option<Instant>,
}

/// Whether an already-queued entry with EDF key `existing` keeps its
/// place ahead of a newly inserted key `incoming`: dated before undated,
/// earlier deadline first, and FIFO on exact ties (the existing entry
/// stays in front) — which also makes undated-only traffic pure FIFO.
fn keeps_place(existing: Option<Instant>, incoming: Option<Instant>) -> bool {
    match (existing, incoming) {
        (None, None) => true,
        (None, Some(_)) => false,
        (Some(_), None) => true,
        (Some(a), Some(b)) => a <= b,
    }
}

/// The earlier of two EDF keys, `None` meaning "never expires" (+∞).
fn earliest(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, None) => a,
        (None, b) => b,
    }
}

#[derive(Debug)]
struct QueueInner<T> {
    interactive: VecDeque<Scheduled<T>>,
    bulk: VecDeque<Scheduled<T>>,
    closed: bool,
    paused: bool,
    high_water: usize,
}

impl<T> QueueInner<T> {
    fn len(&self) -> usize {
        self.interactive.len() + self.bulk.len()
    }

    fn class_mut(&mut self, class: Priority) -> &mut VecDeque<Scheduled<T>> {
        match class {
            Priority::Interactive => &mut self.interactive,
            Priority::Bulk => &mut self.bulk,
        }
    }

    /// Insert in EDF position: after every entry that keeps its place,
    /// before the first that doesn't (binary search — the deque is
    /// always sorted by [`keeps_place`]).
    fn insert_scheduled(&mut self, class: Priority, entry: Scheduled<T>) {
        let deque = self.class_mut(class);
        let idx = deque.partition_point(|e| keeps_place(e.key, entry.key));
        deque.insert(idx, entry);
    }
}

/// A bounded MPMC queue with two strict priority classes,
/// earliest-deadline-first ordering within each class, and a queue-depth
/// high-water mark.
///
/// Producers call [`try_push`](Self::try_push) (FIFO among undated
/// entries), [`try_push_scheduled`](Self::try_push_scheduled) (with an
/// EDF deadline), or [`try_push_or_merge`](Self::try_push_or_merge)
/// (dedup: fold into an identical queued entry) — none of which ever
/// block: a full queue returns [`PushError::Full`] so the caller can
/// shed the request (the serving layer turns this into a `Rejected`
/// ticket). Consumers call [`pop_blocking`](Self::pop_blocking) (parks
/// until an item arrives or the queue closes) or the non-blocking
/// [`drain_class_where`](Self::drain_class_where) used by batch
/// coalescing.
///
/// # Examples
///
/// ```
/// use pass_common::{Priority, RequestQueue};
/// use std::time::{Duration, Instant};
///
/// let queue = RequestQueue::new(8);
/// queue.try_push("sweep", Priority::Bulk).unwrap();
/// queue.try_push("dashboard", Priority::Interactive).unwrap();
/// // A dated bulk entry overtakes the undated bulk one (EDF), but no
/// // bulk entry ever overtakes queued interactive work.
/// let soon = Instant::now() + Duration::from_millis(50);
/// queue
///     .try_push_scheduled("urgent sweep", Priority::Bulk, Some(soon))
///     .unwrap();
///
/// assert_eq!(queue.pop_blocking(), Some(("dashboard", Priority::Interactive)));
/// assert_eq!(queue.pop_blocking(), Some(("urgent sweep", Priority::Bulk)));
/// assert_eq!(queue.pop_blocking(), Some(("sweep", Priority::Bulk)));
/// ```
#[derive(Debug)]
pub struct RequestQueue<T> {
    capacity: usize,
    inner: Mutex<QueueInner<T>>,
    available: Condvar,
}

impl<T> RequestQueue<T> {
    /// A queue admitting at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            inner: Mutex::new(QueueInner {
                interactive: VecDeque::new(),
                bulk: VecDeque::new(),
                closed: false,
                paused: false,
                high_water: 0,
            }),
            available: Condvar::new(),
        }
    }

    /// Maximum items the queue admits.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Items currently queued (both classes).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Whether the queue currently holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The deepest the queue has ever been (items queued simultaneously),
    /// observed after each successful push. A high-water mark at
    /// [`capacity`](Self::capacity) means admission control engaged.
    pub fn high_water(&self) -> usize {
        self.inner.lock().high_water
    }

    /// Enqueue `item` under `priority` with no deadline (it sorts after
    /// every dated entry in the class, FIFO among the undated). Never
    /// blocks: a queue at capacity refuses with [`PushError::Full`] (and
    /// gives `item` back), a closed queue with [`PushError::Closed`].
    pub fn try_push(&self, item: T, priority: Priority) -> Result<(), (PushError, T)> {
        self.try_push_scheduled(item, priority, None)
    }

    /// Enqueue `item` under `priority` with an earliest-deadline-first
    /// key: within its class the entry pops before every entry with a
    /// later (or no) deadline. Equal deadlines preserve submission
    /// order, and `deadline == None` is exactly
    /// [`try_push`](Self::try_push). The deadline only *schedules* —
    /// expiring stale items remains the consumer's job (the serving
    /// layer resolves them `Expired` at pop time), which is what keeps
    /// an expired-at-pop entry from ever blocking a live later one.
    pub fn try_push_scheduled(
        &self,
        item: T,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<(), (PushError, T)> {
        let inner = self.inner.lock();
        self.push_locked(inner, item, priority, deadline)
    }

    /// Dedup-aware push: if a queued entry in `priority`'s class
    /// satisfies `matches(&queued, &item)`, fold `item` into it with
    /// `merge` and return `Ok(true)` — **no capacity is consumed**, so
    /// attaching works even on a full queue (dedup helps most exactly
    /// when the queue is saturated). Attaching also tightens the entry's
    /// EDF key to the earlier of the two deadlines, repositioning it if
    /// needed: an urgent duplicate pulls the shared execution forward.
    /// Otherwise this is [`try_push_scheduled`](Self::try_push_scheduled)
    /// and returns `Ok(false)`.
    ///
    /// Only *queued* entries are candidates — an identical request a
    /// worker already popped is invisible here, and the scan stays
    /// within one class so dedup can never demote interactive work into
    /// a bulk execution (or vice versa). The scan is linear over the
    /// class under the same single lock acquisition as the push; the
    /// queue holds hundreds of entries, not millions.
    pub fn try_push_or_merge(
        &self,
        item: T,
        priority: Priority,
        deadline: Option<Instant>,
        matches: impl Fn(&T, &T) -> bool,
        merge: impl FnOnce(&mut T, T),
    ) -> Result<bool, (PushError, T)> {
        let mut inner = self.inner.lock();
        // Checked here too (not only in push_locked): merging into a
        // closed queue's still-draining entries would smuggle new work
        // past shutdown.
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        let deque = inner.class_mut(priority);
        if let Some(idx) = deque.iter().position(|e| matches(&e.item, &item)) {
            merge(&mut deque[idx].item, item);
            let tightened = earliest(deque[idx].key, deadline);
            if tightened != deque[idx].key {
                if let Some(mut entry) = deque.remove(idx) {
                    entry.key = tightened;
                    inner.insert_scheduled(priority, entry);
                }
            }
            return Ok(true);
        }
        self.push_locked(inner, item, priority, deadline)
            .map(|()| false)
    }

    /// The one push-success path: admission control, EDF insertion,
    /// high-water accounting, and the consumer wakeup, all under the
    /// caller's lock. Hands `item` back on a closed or full queue.
    fn push_locked(
        &self,
        mut inner: MutexGuard<'_, QueueInner<T>>,
        item: T,
        priority: Priority,
        deadline: Option<Instant>,
    ) -> Result<(), (PushError, T)> {
        if inner.closed {
            return Err((PushError::Closed, item));
        }
        if inner.len() >= self.capacity {
            return Err((PushError::Full, item));
        }
        inner.insert_scheduled(
            priority,
            Scheduled {
                item,
                key: deadline,
            },
        );
        inner.high_water = inner.high_water.max(inner.len());
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the highest-priority item — interactive before bulk, and
    /// earliest deadline first within the class (undated entries FIFO
    /// after all dated ones) — parking the caller until one arrives.
    /// Returns `None` only when the queue is closed **and** drained —
    /// workers use that as their exit signal, so no accepted request is
    /// ever dropped by shutdown. A [paused](Self::set_paused) queue
    /// hands out nothing (consumers park even with items waiting)
    /// unless it is closed — shutdown drains regardless of pause.
    pub fn pop_blocking(&self) -> Option<(T, Priority)> {
        let mut inner = self.inner.lock();
        loop {
            if !inner.paused || inner.closed {
                if let Some(entry) = inner.interactive.pop_front() {
                    return Some((entry.item, Priority::Interactive));
                }
                if let Some(entry) = inner.bulk.pop_front() {
                    return Some((entry.item, Priority::Bulk));
                }
                if inner.closed {
                    return None;
                }
            }
            inner = self.available.wait(inner);
        }
    }

    /// Dequeue items from the head of `class` — without blocking, in
    /// schedule (EDF) order — for as long as `admit` approves the next
    /// head; the first refusal (or an empty class) stops the drain with
    /// the queue intact from there. The whole drain holds the lock
    /// **once**, so it is atomic with respect to producers (no per-item
    /// lock churn on the saturated path) and nothing can slip into the
    /// class mid-drain.
    ///
    /// This is the batch-coalescing hook, and it enforces strict
    /// priority: a [`Bulk`](Priority::Bulk) drain returns empty while
    /// any interactive item is queued, so coalescing can never delay
    /// interactive work behind a glued-together bulk batch. Stopping at
    /// the first refusal (rather than skipping past it) is what lets
    /// the serving layer refuse a different-engine head and thereby
    /// never reorder the schedule. Pausing also stops the drain (unless
    /// the queue is closed and draining for shutdown).
    pub fn drain_class_where(&self, class: Priority, mut admit: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut drained = Vec::new();
        let mut inner = self.inner.lock();
        if inner.paused && !inner.closed {
            return drained;
        }
        if class == Priority::Bulk && !inner.interactive.is_empty() {
            return drained;
        }
        let deque = inner.class_mut(class);
        loop {
            match deque.front() {
                Some(head) if admit(&head.item) => {}
                _ => break,
            }
            if let Some(entry) = deque.pop_front() {
                drained.push(entry.item);
            }
        }
        drained
    }

    /// Pause or release consumers. While paused (and not closed),
    /// [`pop_blocking`](Self::pop_blocking) parks even with items
    /// queued and [`drain_class_where`](Self::drain_class_where)
    /// returns nothing — the flag lives under the queue's own lock, so
    /// there is no window where a consumer already parked inside a pop
    /// can slip an item past a pause. Pushes are unaffected (admission
    /// control still applies).
    pub fn set_paused(&self, paused: bool) {
        self.inner.lock().paused = paused;
        self.available.notify_all();
    }

    /// Whether consumers are currently paused.
    pub fn is_paused(&self) -> bool {
        self.inner.lock().paused
    }

    /// Close the queue: future pushes fail with [`PushError::Closed`],
    /// parked consumers wake, and [`pop_blocking`](Self::pop_blocking)
    /// returns `None` once the remaining items drain.
    pub fn close(&self) {
        self.inner.lock().closed = true;
        self.available.notify_all();
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_class() {
        let q = RequestQueue::new(8);
        for i in 0..4 {
            q.try_push(i, Priority::Bulk).unwrap();
        }
        for want in 0..4 {
            assert_eq!(q.pop_blocking(), Some((want, Priority::Bulk)));
        }
    }

    #[test]
    fn interactive_overtakes_bulk() {
        let q = RequestQueue::new(8);
        q.try_push("b1", Priority::Bulk).unwrap();
        q.try_push("b2", Priority::Bulk).unwrap();
        q.try_push("i1", Priority::Interactive).unwrap();
        assert_eq!(q.pop_blocking(), Some(("i1", Priority::Interactive)));
        assert_eq!(q.pop_blocking(), Some(("b1", Priority::Bulk)));
        assert_eq!(q.pop_blocking(), Some(("b2", Priority::Bulk)));
    }

    #[test]
    fn rejects_exactly_beyond_capacity() {
        let q = RequestQueue::new(3);
        for i in 0..3 {
            q.try_push(i, Priority::Bulk).unwrap();
        }
        // The 4th is refused and handed back, regardless of class.
        assert_eq!(
            q.try_push(99, Priority::Bulk).unwrap_err(),
            (PushError::Full, 99)
        );
        assert_eq!(
            q.try_push(99, Priority::Interactive).unwrap_err(),
            (PushError::Full, 99)
        );
        // Draining one slot re-admits exactly one.
        q.pop_blocking().unwrap();
        q.try_push(3, Priority::Bulk).unwrap();
        assert_eq!(
            q.try_push(4, Priority::Bulk).unwrap_err().0,
            PushError::Full
        );
    }

    #[test]
    fn high_water_tracks_the_deepest_point() {
        let q = RequestQueue::new(10);
        q.try_push(1, Priority::Bulk).unwrap();
        q.try_push(2, Priority::Interactive).unwrap();
        assert_eq!(q.high_water(), 2);
        q.pop_blocking().unwrap();
        q.pop_blocking().unwrap();
        q.try_push(3, Priority::Bulk).unwrap();
        assert_eq!(q.high_water(), 2, "high water never recedes");
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn close_drains_then_signals_exit() {
        let q = RequestQueue::new(4);
        q.try_push(1, Priority::Bulk).unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(
            q.try_push(2, Priority::Bulk).unwrap_err().0,
            PushError::Closed
        );
        // The already-accepted item still drains...
        assert_eq!(q.pop_blocking(), Some((1, Priority::Bulk)));
        // ...and only then does the queue report exhaustion.
        assert_eq!(q.pop_blocking(), None);
    }

    #[test]
    fn close_wakes_parked_consumers() {
        let q = RequestQueue::<u32>::new(4);
        std::thread::scope(|s| {
            let t = s.spawn(|| q.pop_blocking());
            std::thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert_eq!(t.join().unwrap(), None);
        });
    }

    #[test]
    fn class_drain_respects_the_predicate_and_stops_at_first_refusal() {
        let q = RequestQueue::new(8);
        for v in [5, 6, 50, 7] {
            q.try_push(v, Priority::Bulk).unwrap();
        }
        // Head refused: nothing drains, queue intact.
        assert!(q.drain_class_where(Priority::Bulk, |&v| v > 10).is_empty());
        assert_eq!(q.len(), 4);
        // Drains admissible heads under one lock, stops at the first
        // refusal even though a later item (7) would qualify.
        assert_eq!(q.drain_class_where(Priority::Bulk, |&v| v < 10), vec![5, 6]);
        assert_eq!(q.len(), 2);
        // Budget-style stateful predicate (the coalescing shape).
        let mut budget = 2usize;
        let got = q.drain_class_where(Priority::Bulk, |_| {
            if budget == 0 {
                false
            } else {
                budget -= 1;
                true
            }
        });
        assert_eq!(got, vec![50, 7]);
        // Empty class: no drain, no panic.
        assert!(q.drain_class_where(Priority::Bulk, |_| true).is_empty());
        assert!(q
            .drain_class_where(Priority::Interactive, |_| true)
            .is_empty());
    }

    #[test]
    fn bulk_drain_yields_to_queued_interactive_work() {
        let q = RequestQueue::new(8);
        q.try_push(1, Priority::Bulk).unwrap();
        q.try_push(2, Priority::Bulk).unwrap();
        q.try_push(9, Priority::Interactive).unwrap();
        // Strict priority: with interactive work queued, a bulk drain
        // returns nothing — coalescing may never delay it.
        assert!(q.drain_class_where(Priority::Bulk, |_| true).is_empty());
        // An interactive drain is unaffected by queued bulk.
        assert_eq!(
            q.drain_class_where(Priority::Interactive, |_| true),
            vec![9]
        );
        // Interactive gone: bulk drains normally again.
        assert_eq!(q.drain_class_where(Priority::Bulk, |_| true), vec![1, 2]);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = RequestQueue::new(1024);
        let produced = 4 * 200;
        std::thread::scope(|s| {
            let consumers: Vec<_> = (0..3)
                .map(|_| {
                    let q = &q;
                    s.spawn(move || {
                        let mut seen = 0usize;
                        while q.pop_blocking().is_some() {
                            seen += 1;
                        }
                        seen
                    })
                })
                .collect();
            let producers: Vec<_> = (0..4)
                .map(|t| {
                    let q = &q;
                    s.spawn(move || {
                        for i in 0..200 {
                            let class = if i % 3 == 0 {
                                Priority::Interactive
                            } else {
                                Priority::Bulk
                            };
                            q.try_push(t * 1000 + i, class).unwrap();
                        }
                    })
                })
                .collect();
            for p in producers {
                p.join().unwrap();
            }
            // All pushes landed; closing releases the consumers once the
            // queue drains.
            q.close();
            let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
            assert_eq!(total, produced);
        });
    }

    #[test]
    fn paused_queue_hands_out_nothing_even_to_parked_consumers() {
        let q = RequestQueue::new(8);
        q.try_push(1, Priority::Bulk).unwrap();
        assert!(!q.is_paused());
        q.set_paused(true);
        assert!(q.is_paused());
        // Non-blocking drain refuses while paused.
        assert!(q.drain_class_where(Priority::Bulk, |_| true).is_empty());
        std::thread::scope(|s| {
            // Consumer parks *inside* pop_blocking while paused...
            let consumer = s.spawn(|| q.pop_blocking());
            std::thread::sleep(std::time::Duration::from_millis(10));
            // ...and a push arriving mid-pause must NOT wake it through.
            q.try_push(2, Priority::Interactive).unwrap();
            std::thread::sleep(std::time::Duration::from_millis(10));
            assert!(!consumer.is_finished(), "paused consumer slipped an item");
            q.set_paused(false);
            assert_eq!(consumer.join().unwrap(), Some((2, Priority::Interactive)));
        });
        assert_eq!(q.pop_blocking(), Some((1, Priority::Bulk)));
    }

    #[test]
    fn close_drains_through_a_pause() {
        let q = RequestQueue::new(4);
        q.try_push(1, Priority::Bulk).unwrap();
        q.set_paused(true);
        q.close();
        // Shutdown overrides pause: the accepted item still drains.
        assert_eq!(q.pop_blocking(), Some((1, Priority::Bulk)));
        assert_eq!(q.pop_blocking(), None);
        assert!(q.drain_class_where(Priority::Bulk, |_| true).is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = RequestQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.try_push(1, Priority::Bulk).unwrap();
        assert_eq!(
            q.try_push(2, Priority::Bulk).unwrap_err().0,
            PushError::Full
        );
    }

    #[test]
    fn earliest_deadline_pops_first_within_a_class() {
        let q = RequestQueue::new(8);
        let base = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let at = |s: u64| Some(base + std::time::Duration::from_secs(s));
        q.try_push_scheduled("late", Priority::Bulk, at(30))
            .unwrap();
        q.try_push_scheduled("soon", Priority::Bulk, at(1)).unwrap();
        q.try_push_scheduled("mid", Priority::Bulk, at(10)).unwrap();
        for want in ["soon", "mid", "late"] {
            assert_eq!(q.pop_blocking(), Some((want, Priority::Bulk)));
        }
    }

    #[test]
    fn undated_entries_keep_fifo_order_after_all_dated_ones() {
        let q = RequestQueue::new(8);
        let soon = Some(std::time::Instant::now() + std::time::Duration::from_secs(1));
        q.try_push("undated-1", Priority::Bulk).unwrap();
        q.try_push("undated-2", Priority::Bulk).unwrap();
        // A dated entry submitted *after* the undated ones still pops
        // first; the undated ones keep their relative FIFO order.
        q.try_push_scheduled("dated", Priority::Bulk, soon).unwrap();
        for want in ["dated", "undated-1", "undated-2"] {
            assert_eq!(q.pop_blocking(), Some((want, Priority::Bulk)));
        }
    }

    #[test]
    fn equal_deadlines_preserve_submission_order() {
        let q = RequestQueue::new(8);
        // One shared Instant: a bit-exact deadline tie.
        let tie = Some(std::time::Instant::now() + std::time::Duration::from_secs(5));
        for v in [1, 2, 3] {
            q.try_push_scheduled(v, Priority::Interactive, tie).unwrap();
        }
        for want in [1, 2, 3] {
            assert_eq!(q.pop_blocking(), Some((want, Priority::Interactive)));
        }
    }

    #[test]
    fn edf_ordering_does_not_cross_priority_classes() {
        let q = RequestQueue::new(8);
        let soon = Some(std::time::Instant::now() + std::time::Duration::from_millis(1));
        q.try_push_scheduled("urgent bulk", Priority::Bulk, soon)
            .unwrap();
        q.try_push("undated interactive", Priority::Interactive)
            .unwrap();
        // Strict classes first, EDF only within one.
        assert_eq!(
            q.pop_blocking(),
            Some(("undated interactive", Priority::Interactive))
        );
        assert_eq!(q.pop_blocking(), Some(("urgent bulk", Priority::Bulk)));
    }

    #[test]
    fn merge_attaches_to_an_identical_entry_without_consuming_capacity() {
        let q: RequestQueue<(u32, u32)> = RequestQueue::new(2);
        q.try_push((7, 1), Priority::Bulk).unwrap();
        q.try_push((8, 1), Priority::Bulk).unwrap();
        // Queue is full, but a duplicate of key 7 still lands by merging.
        let attached = q
            .try_push_or_merge(
                (7, 1),
                Priority::Bulk,
                None,
                |queued, new| queued.0 == new.0,
                |queued, new| queued.1 += new.1,
            )
            .unwrap();
        assert!(attached);
        assert_eq!(q.len(), 2);
        assert_eq!(q.high_water(), 2);
        // A non-matching push on the full queue is still rejected.
        assert_eq!(
            q.try_push_or_merge((9, 1), Priority::Bulk, None, |a, b| a.0 == b.0, |_, _| {})
                .unwrap_err()
                .0,
            PushError::Full
        );
        assert_eq!(q.pop_blocking(), Some(((7, 2), Priority::Bulk)));
        assert_eq!(q.pop_blocking(), Some(((8, 1), Priority::Bulk)));
    }

    #[test]
    fn merge_tightens_the_deadline_and_repositions_the_entry() {
        let q: RequestQueue<(u32, u32)> = RequestQueue::new(8);
        let base = std::time::Instant::now() + std::time::Duration::from_secs(60);
        let at = |s: u64| Some(base + std::time::Duration::from_secs(s));
        q.try_push_scheduled((1, 1), Priority::Bulk, at(5)).unwrap();
        q.try_push_scheduled((2, 1), Priority::Bulk, at(30))
            .unwrap();
        // An urgent duplicate of entry 2 pulls it ahead of entry 1.
        let attached = q
            .try_push_or_merge(
                (2, 1),
                Priority::Bulk,
                at(1),
                |queued, new| queued.0 == new.0,
                |queued, new| queued.1 += new.1,
            )
            .unwrap();
        assert!(attached);
        assert_eq!(q.pop_blocking(), Some(((2, 2), Priority::Bulk)));
        assert_eq!(q.pop_blocking(), Some(((1, 1), Priority::Bulk)));
    }

    #[test]
    fn merge_scans_only_its_own_class() {
        let q: RequestQueue<(u32, u32)> = RequestQueue::new(8);
        q.try_push((7, 1), Priority::Bulk).unwrap();
        // The identical interactive submission must NOT fold into the
        // bulk entry — that would demote it.
        let attached = q
            .try_push_or_merge(
                (7, 1),
                Priority::Interactive,
                None,
                |queued, new| queued.0 == new.0,
                |queued, new| queued.1 += new.1,
            )
            .unwrap();
        assert!(!attached);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_blocking(), Some(((7, 1), Priority::Interactive)));
        assert_eq!(q.pop_blocking(), Some(((7, 1), Priority::Bulk)));
    }

    #[test]
    fn merge_on_a_closed_queue_is_refused() {
        let q: RequestQueue<u32> = RequestQueue::new(8);
        q.try_push(1, Priority::Bulk).unwrap();
        q.close();
        assert_eq!(
            q.try_push_or_merge(1, Priority::Bulk, None, |a, b| a == b, |_, _| {})
                .unwrap_err()
                .0,
            PushError::Closed
        );
    }
}
