//! Kahan–Babuška compensated summation.
//!
//! Partition aggregates and prefix sums accumulate millions of doubles; naive
//! summation loses precision exactly where PASS needs it most (variance of a
//! narrow range computed as the difference of two huge prefix values). All
//! long-running accumulations in the workspace go through [`KahanSum`].

/// A compensated accumulator (Neumaier's variant, which also handles the case
/// where the addend is larger in magnitude than the running sum).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
}

impl KahanSum {
    /// Fresh accumulator at zero.
    #[inline]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    #[inline]
    pub fn add(&mut self, value: f64) {
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
    }

    /// Current compensated total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.sum + self.compensation
    }

    /// Sum an iterator of values with compensation.
    pub fn sum_iter<I: IntoIterator<Item = f64>>(iter: I) -> f64 {
        let mut acc = Self::new();
        for v in iter {
            acc.add(v);
        }
        acc.total()
    }
}

impl std::iter::FromIterator<f64> for KahanSum {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Self::new();
        for v in iter {
            acc.add(v);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_naive_sum_on_benign_input() {
        let vals: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let naive: f64 = vals.iter().sum();
        assert_eq!(KahanSum::sum_iter(vals.iter().copied()), naive);
    }

    #[test]
    fn recovers_catastrophic_cancellation() {
        // 1.0 followed by 1e16 then -1e16: naive summation drops the 1.0.
        let vals = [1.0f64, 1e16, -1e16];
        let naive: f64 = vals.iter().sum();
        assert_ne!(naive, 1.0, "test premise: naive summation loses the 1.0");
        assert_eq!(KahanSum::sum_iter(vals.iter().copied()), 1.0);
    }

    #[test]
    fn many_small_added_to_large() {
        // 1e8 copies of 1e-8 added to 1.0 should give ~2.0.
        let mut acc = KahanSum::new();
        acc.add(1.0);
        for _ in 0..100_000 {
            acc.add(1e-5);
        }
        assert!((acc.total() - 2.0).abs() < 1e-9, "got {}", acc.total());
    }

    #[test]
    fn from_iterator_collects() {
        let acc: KahanSum = vec![1.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(acc.total(), 6.0);
    }
}
