//! A minimal dependency-free worker pool for data-parallel batch work.
//!
//! The build environment is offline (no `rayon`), so — like the `rand` /
//! `criterion` stubs under `vendor/` — this is a deliberately small,
//! API-focused implementation: a [`ThreadPool`] describes a degree of
//! parallelism, and each batch call fans work out over scoped worker
//! threads that *steal chunks* of the input range from a shared atomic
//! cursor. Fast workers simply claim more chunks, so skewed per-item cost
//! (e.g. selective vs. broad queries) balances without any queue
//! machinery, and scoped spawning lets closures borrow the batch and the
//! synopsis directly — no `'static` bounds, no `unsafe`.
//!
//! The intended consumer is [`Synopsis::estimate_many_parallel`]
//! (`crate::synopsis`): query batches are embarrassingly parallel over an
//! immutable synopsis, so chunk-stealing over the query range is all the
//! scheduling the serving layer needs.
//!
//! [`Synopsis::estimate_many_parallel`]: crate::Synopsis::estimate_many_parallel

use std::ops::Range;

use crate::chaos::{AtomicUsize, Mutex, Ordering};

/// A fixed degree of parallelism for batch execution.
///
/// Workers are spawned scoped per batch call (std `thread::scope`), which
/// keeps the implementation safe and borrow-friendly; the per-batch spawn
/// cost (tens of microseconds) is negligible against the multi-thousand
/// query batches this pool is built for. Work distribution is dynamic:
/// the input range is cut into chunks and workers claim chunks from one
/// shared atomic cursor until none remain.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool running `threads` workers; clamped to at least 1.
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// A pool sized to the machine (`std::thread::available_parallelism`),
    /// falling back to 1 when the hardware cannot be queried.
    pub fn with_default_parallelism() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The configured number of workers.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// A reasonable chunk size for `len` items: enough chunks for stealing
    /// to balance skew (~4 per worker), but never so small that cursor
    /// traffic dominates.
    pub fn chunk_size_for(&self, len: usize) -> usize {
        len.div_ceil(self.threads * 4).max(8)
    }

    /// Run `worker` once per pool thread (worker 0 runs on the caller's
    /// thread). A panic in any worker propagates to the caller.
    fn scope_workers<F>(&self, workers: usize, worker: F)
    where
        F: Fn() + Sync,
    {
        if workers <= 1 {
            worker();
            return;
        }
        crate::chaos::scope(|s| {
            for _ in 1..workers {
                s.spawn(&worker);
            }
            worker();
        });
    }

    /// Parallel map over `0..len` in chunks: each chunk produces the
    /// results for its sub-range (one per index, in order), and the chunks
    /// are reassembled in input order — element `i` of the returned vector
    /// corresponds to index `i`, exactly as a sequential loop would
    /// produce.
    pub fn map_chunks<T, F>(&self, len: usize, chunk_size: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Range<usize>) -> Vec<T> + Sync,
    {
        self.map_chunks_with(len, chunk_size, || (), |_, range| f(range))
    }

    /// Like [`map_chunks`](Self::map_chunks), but every worker first
    /// builds private state with `init` and reuses it across all the
    /// chunks it steals — the hook that lets PASS give each worker one
    /// `McfScratch` traversal buffer so the batched allocation-free query
    /// path survives parallelism.
    pub fn map_chunks_with<S, T, I, F>(
        &self,
        len: usize,
        chunk_size: usize,
        init: I,
        f: F,
    ) -> Vec<T>
    where
        T: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, Range<usize>) -> Vec<T> + Sync,
    {
        let chunk_size = chunk_size.max(1);
        let n_chunks = len.div_ceil(chunk_size);
        if n_chunks == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n_chunks);
        if workers <= 1 {
            let mut state = init();
            let mut out = Vec::with_capacity(len);
            for c in 0..n_chunks {
                let start = c * chunk_size;
                out.extend(f(&mut state, start..(start + chunk_size).min(len)));
            }
            return out;
        }

        let cursor = AtomicUsize::new(0);
        let parts: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(n_chunks));
        self.scope_workers(workers, || {
            let mut state = init();
            let mut local: Vec<(usize, Vec<T>)> = Vec::new();
            loop {
                // relaxed: the fetch_add itself hands out unique chunk
                // ids; no other memory is published through the cursor.
                let c = cursor.fetch_add(1, Ordering::Relaxed);
                if c >= n_chunks {
                    break;
                }
                let start = c * chunk_size;
                local.push((c, f(&mut state, start..(start + chunk_size).min(len))));
            }
            parts.lock().extend(local);
        });

        let mut parts = parts.into_inner();
        parts.sort_unstable_by_key(|&(c, _)| c);
        let mut out = Vec::with_capacity(len);
        for (_, mut part) in parts {
            out.append(&mut part);
        }
        out
    }
}

impl Default for ThreadPool {
    /// Defaults to the machine's available parallelism.
    fn default() -> Self {
        Self::with_default_parallelism()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4, 7] {
            let pool = ThreadPool::new(threads);
            for len in [0usize, 1, 5, 100, 1000] {
                let out = pool.map_chunks(len, 3, |r| r.map(|i| i * i).collect());
                let expected: Vec<usize> = (0..len).map(|i| i * i).collect();
                assert_eq!(out, expected, "threads {threads} len {len}");
            }
        }
    }

    #[test]
    fn chunk_size_larger_than_input_is_fine() {
        let pool = ThreadPool::new(4);
        let out = pool.map_chunks(5, 1000, |r| r.collect());
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn chunks_cover_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        let sum = AtomicU64::new(0);
        pool.map_chunks(1000, 7, |r| {
            sum.fetch_add(r.clone().map(|i| i as u64).sum(), Ordering::Relaxed);
            Vec::<()>::new()
        });
        assert_eq!(sum.load(Ordering::Relaxed), 999 * 1000 / 2);
    }

    #[test]
    fn worker_state_is_initialized_per_worker_and_reused() {
        // Each worker counts the chunks it processed in its private state;
        // the per-chunk results record that count, so observing any value
        // greater than 1 proves state survives across chunks.
        let pool = ThreadPool::new(2);
        let out = pool.map_chunks_with(
            64,
            4,
            || 0usize,
            |seen, range| {
                *seen += 1;
                vec![*seen; range.len()]
            },
        );
        assert_eq!(out.len(), 64);
        assert!(out.iter().any(|&c| c > 1), "state reused across chunks");
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(
            pool.map_chunks(3, 1, |r| r.collect::<Vec<_>>()),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn default_pool_matches_hardware() {
        assert!(ThreadPool::default().threads() >= 1);
    }

    #[test]
    fn chunk_sizing_bounds() {
        let pool = ThreadPool::new(4);
        assert!(pool.chunk_size_for(0) >= 1);
        assert_eq!(pool.chunk_size_for(10), 8); // floor applies
        assert_eq!(pool.chunk_size_for(4096), 256); // len / (threads * 4)
    }
}
