//! Property tests for the foundation types: rectangle geometry, mergeable
//! aggregates, prefix sums, and compensated summation.

use proptest::prelude::*;

use pass_common::{Aggregates, KahanSum, PrefixSums, Rect, RectRelation};

fn rect_1d() -> impl Strategy<Value = Rect> {
    (-100.0f64..100.0, 0.0f64..50.0).prop_map(|(lo, w)| Rect::interval(lo, lo + w))
}

fn rect_2d() -> impl Strategy<Value = Rect> {
    (
        -100.0f64..100.0,
        0.0f64..50.0,
        -100.0f64..100.0,
        0.0f64..50.0,
    )
        .prop_map(|(x, w, y, h)| Rect::new(&[(x, x + w), (y, y + h)]))
}

proptest! {
    /// Containment implies intersection, and the relation classification is
    /// consistent with the primitive predicates.
    #[test]
    fn rect_relation_consistency(a in rect_2d(), b in rect_2d()) {
        if b.contains_rect(&a) {
            prop_assert!(a.intersects(&b));
            prop_assert_eq!(a.relation_to(&b), RectRelation::Covered);
        }
        if !a.intersects(&b) {
            prop_assert_eq!(a.relation_to(&b), RectRelation::Disjoint);
            prop_assert_eq!(b.relation_to(&a), RectRelation::Disjoint);
        }
        // Intersection is symmetric.
        prop_assert_eq!(a.intersects(&b), b.intersects(&a));
    }

    /// A rectangle always covers itself; the whole space covers everything.
    #[test]
    fn rect_self_and_whole(a in rect_2d()) {
        prop_assert_eq!(a.relation_to(&a), RectRelation::Covered);
        let whole = Rect::whole(2);
        prop_assert_eq!(a.relation_to(&whole), RectRelation::Covered);
        prop_assert!(whole.contains_rect(&a));
    }

    /// Union is the smallest box containing both operands.
    #[test]
    fn rect_union_contains_both(a in rect_1d(), b in rect_1d()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        // Minimality in 1-D: bounds touch one of the operands.
        prop_assert!(u.lo(0) == a.lo(0) || u.lo(0) == b.lo(0));
        prop_assert!(u.hi(0) == a.hi(0) || u.hi(0) == b.hi(0));
    }

    /// Aggregate merge is commutative and associative, and matches
    /// concatenation.
    #[test]
    fn aggregates_merge_laws(
        xs in prop::collection::vec(-1e3f64..1e3, 0..40),
        ys in prop::collection::vec(-1e3f64..1e3, 0..40),
        zs in prop::collection::vec(-1e3f64..1e3, 0..40),
    ) {
        let (a, b, c) = (
            Aggregates::from_values(&xs),
            Aggregates::from_values(&ys),
            Aggregates::from_values(&zs),
        );
        let ab = a.merge(&b);
        let ba = b.merge(&a);
        prop_assert!((ab.sum - ba.sum).abs() < 1e-9);
        prop_assert_eq!(ab.count, ba.count);
        prop_assert_eq!(ab.min, ba.min);
        prop_assert_eq!(ab.max, ba.max);

        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        prop_assert!((left.sum - right.sum).abs() < 1e-9);
        prop_assert_eq!(left.count, right.count);

        let concat: Vec<f64> = xs.iter().chain(&ys).copied().collect();
        let direct = Aggregates::from_values(&concat);
        prop_assert!((ab.sum - direct.sum).abs() < 1e-6);
        prop_assert_eq!(ab.count, direct.count);
        prop_assert_eq!(ab.min, direct.min);
        prop_assert_eq!(ab.max, direct.max);
    }

    /// Insert/remove round-trips leave SUM/COUNT unchanged.
    #[test]
    fn aggregates_insert_remove_roundtrip(
        base in prop::collection::vec(-1e3f64..1e3, 1..30),
        v in -1e3f64..1e3,
    ) {
        let mut a = Aggregates::from_values(&base);
        let before = a;
        a.insert(v);
        a.remove(v);
        prop_assert!((a.sum - before.sum).abs() < 1e-9);
        prop_assert_eq!(a.count, before.count);
        // Extrema stay conservative (bracketing the true ones).
        prop_assert!(a.min <= before.min);
        prop_assert!(a.max >= before.max);
    }

    /// Prefix sums reproduce arbitrary range sums.
    #[test]
    fn prefix_sums_arbitrary_ranges(
        values in prop::collection::vec(-1e4f64..1e4, 1..200),
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let p = PrefixSums::build(&values);
        let n = values.len();
        let (mut lo, mut hi) = (((n as f64) * a) as usize, ((n as f64) * b) as usize);
        if lo > hi {
            std::mem::swap(&mut lo, &mut hi);
        }
        let naive: f64 = values[lo..hi].iter().sum();
        prop_assert!((p.range_sum(lo, hi) - naive).abs() < 1e-6 * naive.abs().max(1.0));
        prop_assert!(p.scatter(lo, hi) >= 0.0, "scatter is clamped non-negative");
    }

    /// Kahan summation is at least as accurate as naive summation against
    /// an exact reference (integers, exactly representable).
    #[test]
    fn kahan_matches_exact_on_integers(values in prop::collection::vec(-1_000_000i64..1_000_000, 0..500)) {
        let exact: i64 = values.iter().sum();
        let kahan = KahanSum::sum_iter(values.iter().map(|&v| v as f64));
        prop_assert_eq!(kahan, exact as f64);
    }
}
