//! Exhaustive concurrency model tests for the serving-tier primitives.
//!
//! Every test here runs under [`Chaos::check`], which executes its body
//! once per *schedule* — a distinct interleaving of the participating
//! threads at their synchronization points — until the schedule tree is
//! exhausted (or a stated preemption bound prunes it). A failing body
//! panics with a replayable seed:
//!
//! ```text
//! PASS_CHAOS_SEED='0.2.1' cargo test -p pass-common --features chaos <name>
//! ```
//!
//! The suite pins the admission-control invariants documented in
//! `docs/ARCHITECTURE.md` (and expanded in `docs/CONCURRENCY.md`) at the
//! queue / ticket / cache level, plus the named historical near-misses:
//! pause racing a parked `pop_blocking`, and a dedup attach racing the
//! pop of its target. Invariant 1 (fidelity) and invariant 5 (batches
//! never mix engines) are single-threaded routing properties pinned by
//! `tests/serve_contract.rs` / `tests/route_contract.rs` in the root
//! crate; everything with a genuine interleaving surface is here.
//!
//! These tests compile only with the `chaos` feature (always on under a
//! workspace `cargo test` via the root crate's dev-dependencies, never
//! in release builds).

#![cfg(feature = "chaos")]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pass_common::chaos::{self, Chaos};
use pass_common::{
    AggKind, Estimate, GroupBySnapshot, GroupResult, Priority, ProgressiveOutcome,
    ProgressiveTicket, PushError, Query, QueryCache, QueryKey, RequestQueue, ServeOutcome, Ticket,
};

fn key(lo: f64, hi: f64) -> QueryKey {
    QueryKey::new(&Query::interval(AggKind::Sum, lo, hi))
}

/// Invariant: every accepted push is popped exactly once — no item is
/// lost or duplicated under any interleaving of two producers and a
/// blocking consumer.
#[test]
fn every_accepted_push_pops_exactly_once() {
    let report = Chaos::new("push_pop_exactly_once").check(|| {
        let queue: RequestQueue<u32> = RequestQueue::new(4);
        let mut popped = Vec::new();
        chaos::scope(|s| {
            s.spawn(|| queue.try_push(1, Priority::Interactive).unwrap());
            s.spawn(|| queue.try_push(2, Priority::Interactive).unwrap());
            for _ in 0..2 {
                if let Some((item, _)) = queue.pop_blocking() {
                    popped.push(item);
                }
            }
        });
        popped.sort_unstable();
        assert_eq!(popped, [1, 2], "an accepted item was lost or duplicated");
        assert!(queue.is_empty());
    });
    assert!(report.exhausted, "schedule tree must be fully explored");
}

/// Invariant 2 (bounded queue, exact rejection): with `queue_depth = 1`,
/// two racing pushes admit exactly one and reject exactly one with
/// `Full`, in every interleaving — and draining the slot re-admits
/// exactly one.
#[test]
fn bounded_queue_rejects_exactly_at_capacity() {
    let report = Chaos::new("bounded_rejection").check(|| {
        let queue: RequestQueue<u32> = RequestQueue::new(1);
        let (a, b) = chaos::scope(|s| {
            let t1 = s.spawn(|| queue.try_push(1, Priority::Interactive).is_ok());
            let t2 = s.spawn(|| queue.try_push(2, Priority::Interactive).is_ok());
            (t1.join().unwrap(), t2.join().unwrap())
        });
        assert!(
            a ^ b,
            "capacity 1: exactly one of two racing pushes must be admitted"
        );
        assert_eq!(queue.len(), 1);
        assert_eq!(queue.high_water(), 1, "admission never overshoots");
        // Draining the slot re-admits exactly one request.
        assert!(queue.pop_blocking().is_some());
        assert!(queue.try_push(3, Priority::Interactive).is_ok());
        assert_eq!(queue.high_water(), 1);
    });
    assert!(report.exhausted);
}

/// Invariant 4 (strict two-class priority): whenever both classes are
/// non-empty at pop time, interactive wins. The consumer checks the
/// queue's length first — under a single consumer the length can only
/// grow concurrently, so observing both items queued proves the first
/// pop chose between them.
#[test]
fn interactive_always_pops_before_queued_bulk() {
    let saw_both_queued = Arc::new(AtomicU64::new(0));
    let saw_interleaved = Arc::new(AtomicU64::new(0));
    let both = Arc::clone(&saw_both_queued);
    let inter = Arc::clone(&saw_interleaved);
    let report = Chaos::new("strict_priority").check(move || {
        let queue: RequestQueue<u32> = RequestQueue::new(4);
        chaos::scope(|s| {
            s.spawn(|| {
                queue.try_push(20, Priority::Bulk).unwrap();
                queue.try_push(10, Priority::Interactive).unwrap();
            });
            let queued = queue.len();
            let (first, _) = queue.pop_blocking().unwrap();
            let (second, _) = queue.pop_blocking().unwrap();
            if queued == 2 {
                // Both were queued when the consumer chose: strict
                // priority must pick the interactive item.
                assert_eq!(first, 10, "bulk popped ahead of queued interactive");
                assert_eq!(second, 20);
                both.fetch_add(1, Ordering::Relaxed);
            } else {
                // The consumer's length check raced ahead of the
                // producer; either order is legal (priority only orders
                // *queued* work) but both items still arrive.
                let mut got = [first, second];
                got.sort_unstable();
                assert_eq!(got, [10, 20]);
                if (first, second) == (20, 10) {
                    inter.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });
    assert!(report.exhausted);
    // The model genuinely explored both phenomena.
    assert!(saw_both_queued.load(Ordering::Relaxed) > 0);
    assert!(saw_interleaved.load(Ordering::Relaxed) > 0);
}

/// Invariant 4, EDF half: however two racing dated pushes interleave,
/// the earlier deadline pops first within the class.
#[test]
fn edf_order_is_independent_of_push_interleaving() {
    let report = Chaos::new("edf_order").check(|| {
        let queue: RequestQueue<u32> = RequestQueue::new(4);
        let base = Instant::now();
        let soon = Some(base + Duration::from_millis(10));
        let late = Some(base + Duration::from_millis(20));
        chaos::scope(|s| {
            s.spawn(|| queue.try_push_scheduled(1, Priority::Bulk, late).unwrap());
            s.spawn(|| queue.try_push_scheduled(2, Priority::Bulk, soon).unwrap());
        });
        let (first, _) = queue.pop_blocking().unwrap();
        let (second, _) = queue.pop_blocking().unwrap();
        assert_eq!(
            (first, second),
            (2, 1),
            "earliest deadline must pop first regardless of arrival order"
        );
    });
    assert!(report.exhausted);
}

/// Historical near-miss #1: a consumer parked inside `pop_blocking` on a
/// paused queue, racing a push and the resume. If `set_paused(false)`
/// failed to notify (or pause re-checking had a window), the consumer
/// would sleep forever with work queued — the model reports that as a
/// deadlock with a seed.
#[test]
fn resume_always_wakes_a_consumer_parked_through_a_pause() {
    let report = Chaos::new("pause_resume_wakeup").preemptions(3).check(|| {
        let queue: RequestQueue<u32> = RequestQueue::new(4);
        queue.set_paused(true);
        chaos::scope(|s| {
            let consumer = s.spawn(|| queue.pop_blocking());
            s.spawn(|| {
                queue.try_push(7, Priority::Interactive).unwrap();
            });
            s.spawn(|| queue.set_paused(false));
            assert_eq!(consumer.join().unwrap(), Some((7, Priority::Interactive)));
        });
    });
    assert!(report.exhausted, "bounded-exhaustive at 3 preemptions");
}

/// Invariant 6, queue half: close() drains accepted work even through a
/// pause, wakes every parked consumer, and only then reports `None`.
/// Two consumers racing one close: the queued item goes to exactly one
/// of them, the other observes shutdown.
#[test]
fn close_drains_through_pause_and_wakes_every_consumer() {
    let report = Chaos::new("close_drains").preemptions(3).check(|| {
        let queue: RequestQueue<u32> = RequestQueue::new(4);
        queue.try_push(9, Priority::Bulk).unwrap();
        queue.set_paused(true);
        let (a, b) = chaos::scope(|s| {
            let c1 = s.spawn(|| queue.pop_blocking());
            let c2 = s.spawn(|| queue.pop_blocking());
            s.spawn(|| queue.close());
            (c1.join().unwrap(), c2.join().unwrap())
        });
        let got = [a, b];
        assert_eq!(
            got.iter().filter(|g| g.is_none()).count(),
            1,
            "exactly one consumer observes shutdown: {got:?}"
        );
        assert!(
            got.contains(&Some((9, Priority::Bulk))),
            "shutdown must hand the accepted item to exactly one consumer: {got:?}"
        );
    });
    assert!(report.exhausted, "bounded-exhaustive at 3 preemptions");
}

/// Historical near-miss #2: a dedup attach racing the pop of its target.
/// Whichever side wins the lock, the duplicate's payload must survive —
/// either folded into the popped entry or re-queued as a fresh entry —
/// and the queue's bookkeeping must stay coherent.
#[test]
fn dedup_attach_racing_pop_of_target_conserves_work() {
    let saw_merge = Arc::new(AtomicU64::new(0));
    let saw_miss = Arc::new(AtomicU64::new(0));
    let merges = Arc::clone(&saw_merge);
    let misses = Arc::clone(&saw_miss);
    let report = Chaos::new("dedup_vs_pop").check(move || {
        // Entries are (key, weight): dedup folds weights together.
        let queue: RequestQueue<(u32, u32)> = RequestQueue::new(4);
        queue.try_push((7, 1), Priority::Interactive).unwrap();
        let (popped, attached) = chaos::scope(|s| {
            let consumer = s.spawn(|| queue.pop_blocking().unwrap());
            let producer = s.spawn(|| {
                queue
                    .try_push_or_merge(
                        (7, 1),
                        Priority::Interactive,
                        None,
                        |queued, new| queued.0 == new.0,
                        |queued, new| queued.1 += new.1,
                    )
                    .unwrap()
            });
            (consumer.join().unwrap(), producer.join().unwrap())
        });
        let leftover: u32 = queue
            .drain_class_where(Priority::Interactive, |_| true)
            .iter()
            .map(|&(_, w)| w)
            .sum();
        assert_eq!(
            popped.0 .1 + leftover,
            2,
            "the duplicate's weight was lost or double-counted"
        );
        if attached {
            // Merged into the still-queued target: the consumer popped
            // the combined entry and nothing is left behind.
            assert_eq!(popped.0, (7, 2));
            assert_eq!(leftover, 0);
            merges.fetch_add(1, Ordering::Relaxed);
        } else {
            // The pop won: the attach missed and fell back to a normal
            // push of its own entry.
            assert_eq!(popped.0, (7, 1));
            assert_eq!(leftover, 1);
            misses.fetch_add(1, Ordering::Relaxed);
        }
    });
    assert!(report.exhausted);
    assert!(
        saw_merge.load(Ordering::Relaxed) > 0,
        "merge path unexplored"
    );
    assert!(saw_miss.load(Ordering::Relaxed) > 0, "miss path unexplored");
}

/// Dedup on a saturated queue: attaching consumes no capacity, so the
/// duplicate is admitted even when a plain push would be rejected —
/// in every interleaving with a racing consumer.
#[test]
fn dedup_attach_is_admitted_on_a_full_queue() {
    let report = Chaos::new("dedup_full_queue").check(|| {
        let queue: RequestQueue<(u32, u32)> = RequestQueue::new(1);
        queue.try_push((7, 1), Priority::Interactive).unwrap();
        // Queue is at capacity: a non-matching plain push is refused.
        assert!(matches!(
            queue.try_push((8, 1), Priority::Interactive),
            Err((PushError::Full, _))
        ));
        chaos::scope(|s| {
            let consumer = s.spawn(|| queue.pop_blocking().unwrap());
            let producer = s.spawn(|| {
                queue.try_push_or_merge(
                    (7, 1),
                    Priority::Interactive,
                    None,
                    |queued, new| queued.0 == new.0,
                    |queued, new| queued.1 += new.1,
                )
            });
            let attach = producer.join().unwrap();
            // Attach won: no capacity consumed. Pop won: the queue had
            // drained, so the fallback push was admitted. Either way the
            // duplicate is never bounced off a full queue.
            assert!(attach.is_ok(), "duplicate rejected despite dedup");
            let popped = consumer.join().unwrap();
            let leftover: u32 = queue
                .drain_class_where(Priority::Interactive, |_| true)
                .iter()
                .map(|&(_, w)| w)
                .sum();
            assert_eq!(popped.0 .1 + leftover, 2);
        });
    });
    assert!(report.exhausted);
}

/// Invariant 6, ticket half: a worker that panics mid-request resolves
/// every ticket attached to its in-flight work exactly once — fulfilled
/// tickets keep their outcome, unfulfilled slots cancel on the unwind
/// path — and concurrent waiters always wake.
#[test]
fn worker_panic_resolves_every_fanned_out_ticket_exactly_once() {
    let report = Chaos::new("ticket_fanout_panic").preemptions(3).check(|| {
        let (done_ticket, done_slot) = Ticket::pending();
        let (lost_a, slot_a) = Ticket::pending();
        let (lost_b, slot_b) = Ticket::pending();
        chaos::scope(|s| {
            let worker = s.spawn(move || {
                // One attached waiter is answered before the crash…
                done_slot.fulfill(ServeOutcome::Done(vec![Ok(Estimate::exact(1.0))]), Some(0));
                // …then the worker dies with two slots in hand; the
                // unwind must cancel both.
                let _still_held = (slot_a, slot_b);
                panic!("injected worker crash");
            });
            let wa = s.spawn(|| lost_a.wait());
            let wb = s.spawn(|| lost_b.wait());
            assert!(worker.join().is_err(), "the panic must surface on join");
            assert_eq!(wa.join().unwrap(), ServeOutcome::Cancelled);
            assert_eq!(wb.join().unwrap(), ServeOutcome::Cancelled);
        });
        // The pre-crash fulfillment is final: the unwind never
        // downgrades an already-resolved ticket.
        assert_eq!(done_ticket.completion_index(), Some(0));
        assert!(done_ticket.wait().is_done());
    });
    assert!(report.exhausted, "bounded-exhaustive at 3 preemptions");
}

/// Invariant 6, end-to-end mini-model: a producer, a draining worker,
/// and a racing shutdown. Every ticket ever issued resolves exactly
/// once — `Done` iff its push was admitted before the close, `Cancelled`
/// (via slot drop) iff the close won.
#[test]
fn shutdown_leaves_no_ticket_behind() {
    let report = Chaos::new("no_ticket_left_behind")
        .preemptions(2)
        .check(|| {
            let queue = RequestQueue::new(4);
            let (t1, s1) = Ticket::pending();
            let (t2, s2) = Ticket::pending();
            let (accepted1, accepted2) = chaos::scope(|s| {
                let q = &queue;
                let producer = s.spawn(move || {
                    // A rejected push hands the slot back in the error;
                    // dropping it there resolves the ticket Cancelled.
                    let a1 = q.try_push(s1, Priority::Interactive).is_ok();
                    let a2 = q.try_push(s2, Priority::Interactive).is_ok();
                    (a1, a2)
                });
                s.spawn(|| queue.close());
                // The worker drains until shutdown: every admitted slot
                // is fulfilled `Done`, then `None` ends the loop.
                while let Some((slot, _)) = queue.pop_blocking() {
                    slot.fulfill(ServeOutcome::Done(Vec::new()), None);
                }
                producer.join().unwrap()
            });
            for (ticket, accepted) in [(t1, accepted1), (t2, accepted2)] {
                let outcome = ticket.wait();
                if accepted {
                    assert!(outcome.is_done(), "an admitted request was dropped");
                } else {
                    assert_eq!(outcome, ServeOutcome::Cancelled);
                }
            }
        });
    assert!(report.exhausted, "bounded-exhaustive at 2 preemptions");
}

/// Progressive resolution is first-wins and exactly-once: a worker
/// publishing the final snapshot and resolving `Done { partial: false }`
/// races a deadline path resolving the best estimate so far as
/// `Done { partial: true }`. In every interleaving **exactly one**
/// resolver wins, the ticket's outcome is exactly the winner's — never
/// both (a final answer silently downgraded to partial, or vice versa)
/// and never neither (a hung ticket) — a concurrent waiter wakes to
/// that same outcome, and the snapshot stream never regresses.
#[test]
fn progressive_deadline_race_resolves_exactly_once() {
    fn row(value: f64) -> GroupResult {
        GroupResult {
            key: 0.0,
            estimate: Ok(Estimate::exact(value)),
        }
    }
    let saw_deadline_win = Arc::new(AtomicU64::new(0));
    let saw_worker_win = Arc::new(AtomicU64::new(0));
    let deadline_wins = Arc::clone(&saw_deadline_win);
    let worker_wins = Arc::clone(&saw_worker_win);
    let report = Chaos::new("progressive_deadline_race")
        .preemptions(3)
        .check(move || {
            let (ticket, slot) = ProgressiveTicket::pending();
            // The first (intermediate) snapshot exists before the race: the
            // deadline path always has a best-so-far to resolve with.
            assert!(slot.publish(GroupBySnapshot {
                shards_merged: 1,
                shards_total: 2,
                groups: vec![row(10.0)],
                last: false,
            }));
            let final_outcome = ProgressiveOutcome::Done {
                groups: vec![row(12.0)],
                partial: false,
            };
            let partial_outcome = ProgressiveOutcome::Done {
                groups: vec![row(10.0)],
                partial: true,
            };
            let deadline_slot = slot.clone();
            let waiter_ticket = ticket.clone();
            let (worker_won, deadline_won, waited) = chaos::scope(|s| {
                let final_for_worker = final_outcome.clone();
                let partial_for_deadline = partial_outcome.clone();
                let worker = s.spawn(move || {
                    // The worker publishes its final snapshot, then claims
                    // the resolution — the same order `execute_progressive`
                    // uses in the serving tier.
                    slot.publish(GroupBySnapshot {
                        shards_merged: 2,
                        shards_total: 2,
                        groups: vec![row(12.0)],
                        last: true,
                    });
                    slot.try_resolve(final_for_worker)
                });
                let deadline = s.spawn(move || deadline_slot.try_resolve(partial_for_deadline));
                let waiter = s.spawn(move || waiter_ticket.wait());
                (
                    worker.join().unwrap(),
                    deadline.join().unwrap(),
                    waiter.join().unwrap(),
                )
            });
            assert!(
                worker_won ^ deadline_won,
                "exactly one resolver must win (worker {worker_won}, deadline {deadline_won})"
            );
            let resolved = ticket.poll().expect("the race never leaves a hung ticket");
            let expected = if worker_won {
                worker_wins.fetch_add(1, Ordering::Relaxed);
                &final_outcome
            } else {
                deadline_wins.fetch_add(1, Ordering::Relaxed);
                &partial_outcome
            };
            assert_eq!(&resolved, expected, "outcome must be exactly the winner's");
            assert_eq!(waited, resolved, "the waiter woke to a different outcome");
            // The snapshot stream stays coherent: the intermediate is always
            // retained, the final snapshot is appended or not, never blended
            // — and publishes after resolution were dropped.
            let snapshots = ticket.snapshots();
            assert!(!snapshots.is_empty() && snapshots.len() <= 2);
            assert_eq!(snapshots[0].shards_merged, 1);
            if let Some(last) = snapshots.last() {
                assert!(last.shards_merged <= 2);
            }
        });
    assert!(report.exhausted, "schedule tree must be fully explored");
    // The model genuinely explored both winners.
    assert!(
        saw_worker_win.load(Ordering::Relaxed) > 0,
        "worker-wins path unexplored"
    );
    assert!(
        saw_deadline_win.load(Ordering::Relaxed) > 0,
        "deadline-wins path unexplored"
    );
}

/// Epoch coherence: two synopsis handles observing the same new epoch
/// race their `sync_epoch` calls. The generation bump must clear the
/// stale entries exactly once — a second clear would drop entries
/// already recomputed against the *new* epoch.
#[test]
fn racing_epoch_syncs_clear_exactly_once() {
    let report = Chaos::new("epoch_bump_vs_insert").check(|| {
        let cache = Arc::new(QueryCache::new(4));
        let stale = key(0.0, 1.0);
        let fresh = key(2.0, 3.0);
        cache.insert_keyed(stale.clone(), Ok(Estimate::exact(1.0)));
        chaos::scope(|s| {
            let c1 = Arc::clone(&cache);
            let c2 = Arc::clone(&cache);
            let fresh_key = fresh.clone();
            s.spawn(move || {
                // Handle 1 observes epoch 7, clears, and stores a result
                // computed against the new generation.
                c1.sync_epoch(7);
                c1.insert_keyed(fresh_key, Ok(Estimate::exact(2.0)));
            });
            s.spawn(move || c2.sync_epoch(7));
        });
        assert!(
            cache.get_keyed(&stale).is_none(),
            "pre-bump entry must not survive the epoch change"
        );
        assert!(
            cache.get_keyed(&fresh).is_some(),
            "a racing second sync cleared the new generation's entry"
        );
    });
    assert!(report.exhausted);
}
