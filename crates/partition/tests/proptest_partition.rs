//! Property tests for the partitioning optimizers: structural invariants
//! of every partitioner, the variance-monotonicity lemma, the discretized
//! oracles' approximation bounds, and ADP's budget behaviour.

use proptest::prelude::*;

use pass_common::{AggKind, PrefixSums};
use pass_partition::maxvar::{Exhaustive, MaxVarOracle, MedianSplit, WindowIndex};
use pass_partition::{
    Adp, CountOptimal, EqualDepth, EqualWidth, HillClimb, Partitioner1D, VarianceOracle,
};
use pass_table::SortedTable;

fn sorted_table() -> impl Strategy<Value = SortedTable> {
    prop::collection::vec(prop_oneof![Just(0.0f64), 0.1f64..100.0, Just(7.0)], 8..300).prop_map(
        |values| {
            // Keys with occasional duplicates (every third key repeats).
            let keys: Vec<f64> = (0..values.len()).map(|i| (i - i % 3) as f64).collect();
            SortedTable::from_sorted(keys, values)
        },
    )
}

fn all_partitioners() -> Vec<Box<dyn Partitioner1D>> {
    vec![
        Box::new(Adp::new(AggKind::Sum).with_samples(256)),
        Box::new(Adp::new(AggKind::Avg).with_samples(256)),
        Box::new(Adp::new(AggKind::Count)),
        Box::new(EqualDepth),
        Box::new(EqualWidth),
        Box::new(CountOptimal),
        Box::new(HillClimb::new(AggKind::Sum)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every partitioner returns a valid partitioning: buckets tile the
    /// row range exactly and the bucket count respects the budget.
    #[test]
    fn partitioners_produce_valid_tilings(sorted in sorted_table(), k in 1usize..20) {
        for p in all_partitioners() {
            let part = p.partition(&sorted, k).unwrap();
            prop_assert!(part.len() <= k.max(1), "{}", p.name());
            let ranges = part.ranges();
            prop_assert_eq!(ranges[0].start, 0, "{}", p.name());
            prop_assert_eq!(ranges[ranges.len() - 1].end, sorted.len());
            for w in ranges.windows(2) {
                prop_assert_eq!(w[0].end, w[1].start, "{}", p.name());
            }
            prop_assert!(ranges.iter().all(|r| !r.is_empty()), "{}", p.name());
        }
    }

    /// The Section 4.3 monotonicity lemma: growing a partition around a
    /// fixed query never decreases the query's variance.
    #[test]
    fn variance_monotone_under_partition_growth(
        values in prop::collection::vec(-50.0f64..50.0, 10..80),
        q_lo_frac in 0.2f64..0.5,
        q_len_frac in 0.05f64..0.3,
    ) {
        let prefix = PrefixSums::build(&values);
        let n = values.len();
        let q_lo = ((n as f64) * q_lo_frac) as usize;
        let q_hi = (q_lo + ((n as f64) * q_len_frac) as usize + 1).min(n);
        for kind in [AggKind::Sum, AggKind::Avg, AggKind::Count] {
            let oracle = VarianceOracle::new(&prefix, kind);
            let mut last = 0.0f64;
            // Partitions nested around the query: [q_lo - g, q_hi + g).
            for g in 0..q_lo.min(n - q_hi) {
                let v = oracle.query_variance(q_lo - g, q_hi + g, q_lo, q_hi);
                prop_assert!(
                    v + 1e-9 >= last,
                    "{kind}: shrank from {last} to {v} at growth {g}"
                );
                last = v;
            }
        }
    }

    /// Median-split stays within [exact/4, exact] for SUM on arbitrary
    /// data (Lemma A.3, both directions).
    #[test]
    fn median_split_quarter_bound(values in prop::collection::vec(-100.0f64..100.0, 4..60)) {
        let prefix = PrefixSums::build(&values);
        let oracle = VarianceOracle::new(&prefix, AggKind::Sum);
        let approx = MedianSplit::new(oracle).max_variance(0, values.len());
        let exact = Exhaustive::new(oracle, 1).max_variance(0, values.len());
        prop_assert!(approx <= exact + 1e-9);
        prop_assert!(approx >= exact / 4.0 - 1e-9);
    }

    /// The AVG window index never reports a variance exceeding the true
    /// maximum over meaningful queries.
    #[test]
    fn window_index_is_conservative(values in prop::collection::vec(0.0f64..100.0, 12..80), dm in 2usize..5) {
        let prefix = PrefixSums::build(&values);
        let idx = WindowIndex::build(&prefix, dm);
        let oracle = VarianceOracle::new(&prefix, AggKind::Avg);
        let exact = Exhaustive::new(oracle, dm).max_variance(0, values.len());
        prop_assert!(idx.max_variance(0, values.len()) <= exact + 1e-9);
    }

    /// ADP with duplicate keys never splits a key run, and its cuts land
    /// strictly inside the row range.
    #[test]
    fn adp_respects_key_runs(sorted in sorted_table(), k in 2usize..16) {
        let part = Adp::new(AggKind::Sum)
            .with_samples(128)
            .partition(&sorted, k)
            .unwrap();
        let keys = sorted.keys();
        for &c in part.cuts() {
            prop_assert!(c > 0 && c < sorted.len());
            prop_assert_ne!(keys[c - 1], keys[c], "cut at {} splits key {}", c, keys[c]);
        }
    }

    /// ADP uses its full budget whenever the key space allows it.
    #[test]
    fn adp_exhausts_budget_on_distinct_keys(
        values in prop::collection::vec(-10.0f64..10.0, 32..200),
        k in 2usize..16,
    ) {
        let keys: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let sorted = SortedTable::from_sorted(keys, values);
        let part = Adp::new(AggKind::Sum)
            .with_samples(sorted.len())
            .partition(&sorted, k)
            .unwrap();
        prop_assert_eq!(part.len(), k.min(sorted.len()));
    }
}
