//! Partitioning optimizers — the paper's Section 4 and Appendix A.
//!
//! The quality of a PASS synopsis is decided by its leaf partitioning: the
//! optimizer minimizes the *maximum* variance of any query that partially
//! overlaps a partition. This crate contains the full algorithm family:
//!
//! * [`spec`] — the [`spec::Partitioning1D`] representation
//!   (cut positions over a sorted table) and the [`Partitioner1D`] trait;
//! * [`variance`] — the `V_i(q)` variance oracles of Section 4.2.1, O(1)
//!   per query over prefix sums;
//! * [`maxvar`] — maximum-variance-query routines: exhaustive reference,
//!   the median-split ¼-approximation for SUM/COUNT (Lemma A.3), and the
//!   δm-window index for AVG (Appendix A.4);
//! * [`dp`] — the dynamic programs: `NaiveDp` (O(kN⁴) reference),
//!   `MonotoneDp` (binary-search DP, Appendix A.5), and `Adp` — the
//!   sampled + discretized O(km log m) program used in all experiments;
//! * [`equal`] — equal-depth (EQ) and equal-width baselines, and the
//!   COUNT-optimal equal-size partitioning (Lemma A.1);
//! * [`hill_climb`] — the AQP++ hill-climbing comparator;
//! * [`kd`] — balanced k-d trees with greedy max-variance expansion
//!   (KD-PASS) and breadth-first expansion (KD-US) for d > 1 (Section 4.4).

pub mod dp;
pub mod equal;
pub mod hill_climb;
pub mod kd;
pub mod maxvar;
pub mod spec;
pub mod variance;

pub use dp::{Adp, MonotoneDp, NaiveDp};
pub use equal::{CountOptimal, EqualDepth, EqualWidth};
pub use hill_climb::HillClimb;
pub use kd::{build_kd, KdBuild, KdExpansion, KdNodeInfo};
pub use spec::{Partitioner1D, Partitioning1D};
pub use variance::VarianceOracle;
