//! The shared DP engine behind all three partitioners.

use crate::maxvar::MaxVarOracle;

/// How the inner minimization over the split point `h` is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchStrategy {
    /// Try every feasible `h` — exact for any oracle.
    Linear,
    /// Binary search exploiting the Section 4.3 monotonicity
    /// (`A[h, j-1]` non-decreasing and `M([h, i))` non-increasing in `h`),
    /// probing a small neighbourhood around the crossing to absorb
    /// approximate oracles (Appendix A.5).
    Binary,
}

/// Run the DP over `n` items with at most `k` buckets, minimum bucket size
/// `min_size`, and the given max-variance oracle. Returns the interior cut
/// positions (possibly fewer than `k-1` when `n` is small) and the achieved
/// objective `A[n, k]`.
// Index loops mirror the paper's DP recurrence over `A[i, j]`; iterator
// adaptors would obscure the crossing-search structure.
#[allow(clippy::needless_range_loop)]
pub fn dp_cuts<O: MaxVarOracle>(
    n: usize,
    k: usize,
    min_size: usize,
    oracle: &O,
    strategy: SearchStrategy,
) -> (Vec<usize>, f64) {
    assert!(n > 0, "dp over empty input");
    let min_size = min_size.max(1);
    let k = k.clamp(1, n / min_size.max(1)).max(1);

    // Base layer: one bucket over the first i items.
    let mut prev: Vec<f64> = vec![f64::INFINITY; n + 1];
    for i in min_size..=n {
        prev[i] = oracle.max_variance(0, i);
    }
    prev[0] = 0.0;

    if k == 1 {
        return (Vec::new(), prev[n]);
    }

    // choice[j-2][i] = chosen h for A[i, j] (layers j = 2..=k).
    let mut choices: Vec<Vec<u32>> = Vec::with_capacity(k - 1);
    let mut cur: Vec<f64> = vec![f64::INFINITY; n + 1];

    for j in 2..=k {
        let mut choice_row = vec![u32::MAX; n + 1];
        let h_min_base = (j - 1) * min_size;
        for i in (j * min_size)..=n {
            let h_lo = h_min_base;
            let h_hi = i - min_size;
            let (best_h, best_v) = match strategy {
                SearchStrategy::Linear => {
                    let mut best = (h_lo, f64::INFINITY);
                    for h in h_lo..=h_hi {
                        let v = prev[h].max(oracle.max_variance(h, i));
                        if v < best.1 {
                            best = (h, v);
                        }
                    }
                    best
                }
                SearchStrategy::Binary => {
                    // Find the crossing of the monotone curves, then probe
                    // its neighbourhood (approximate oracles can perturb
                    // strict monotonicity locally).
                    let (mut lo, mut hi) = (h_lo, h_hi);
                    while lo < hi {
                        let mid = lo + (hi - lo) / 2;
                        if prev[mid] < oracle.max_variance(mid, i) {
                            lo = mid + 1;
                        } else {
                            hi = mid;
                        }
                    }
                    let probe_lo = lo.saturating_sub(2).max(h_lo);
                    let probe_hi = (lo + 2).min(h_hi);
                    let mut best = (probe_lo, f64::INFINITY);
                    for h in probe_lo..=probe_hi {
                        let v = prev[h].max(oracle.max_variance(h, i));
                        if v < best.1 {
                            best = (h, v);
                        }
                    }
                    best
                }
            };
            cur[i] = best_v;
            choice_row[i] = best_h as u32;
        }
        choices.push(choice_row);
        std::mem::swap(&mut prev, &mut cur);
        for v in cur.iter_mut() {
            *v = f64::INFINITY;
        }
        cur[0] = 0.0;
    }

    // Backtrack from A[n, k].
    let objective = prev[n];
    let mut cuts = Vec::with_capacity(k - 1);
    let mut i = n;
    for j in (2..=k).rev() {
        let h = choices[j - 2][i] as usize;
        if h == u32::MAX as usize || h == 0 {
            break;
        }
        cuts.push(h);
        i = h;
    }
    cuts.sort_unstable();
    cuts.dedup();
    (cuts, objective)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxvar::{Exhaustive, MaxVarOracle};
    use crate::variance::VarianceOracle;
    use pass_common::{AggKind, PrefixSums};

    /// Oracle whose "variance" is the range length — forces equal splits.
    struct LengthOracle;
    impl MaxVarOracle for LengthOracle {
        fn max_variance(&self, lo: usize, hi: usize) -> f64 {
            (hi - lo) as f64
        }
    }

    #[test]
    fn equalizes_under_length_objective() {
        for strategy in [SearchStrategy::Linear, SearchStrategy::Binary] {
            let (cuts, obj) = dp_cuts(12, 3, 1, &LengthOracle, strategy);
            assert_eq!(cuts.len(), 2, "{strategy:?}");
            assert_eq!(obj, 4.0, "{strategy:?}: objective = max bucket size");
            // Buckets of size 4 each.
            assert_eq!(cuts, vec![4, 8]);
        }
    }

    #[test]
    fn k1_returns_no_cuts() {
        let (cuts, obj) = dp_cuts(10, 1, 1, &LengthOracle, SearchStrategy::Linear);
        assert!(cuts.is_empty());
        assert_eq!(obj, 10.0);
    }

    #[test]
    fn k_clamped_to_n() {
        let (cuts, _) = dp_cuts(3, 10, 1, &LengthOracle, SearchStrategy::Linear);
        assert!(cuts.len() <= 2);
    }

    #[test]
    fn min_size_respected() {
        let (cuts, _) = dp_cuts(12, 3, 3, &LengthOracle, SearchStrategy::Linear);
        let mut prev = 0;
        for &c in &cuts {
            assert!(c - prev >= 3);
            prev = c;
        }
        assert!(12 - prev >= 3);
    }

    #[test]
    fn binary_matches_linear_on_exact_oracle() {
        // With a genuinely monotone oracle the binary search must find the
        // same objective as the linear scan.
        let v: Vec<f64> = (0..40)
            .map(|i| if i < 30 { 0.0 } else { (i * 13 % 17) as f64 })
            .collect();
        let p = PrefixSums::build(&v);
        let oracle = Exhaustive::new(VarianceOracle::new(&p, AggKind::Sum), 1);
        for k in [2, 3, 4, 6] {
            let (_, lin) = dp_cuts(40, k, 1, &oracle, SearchStrategy::Linear);
            let (_, bin) = dp_cuts(40, k, 1, &oracle, SearchStrategy::Binary);
            assert!(
                (lin - bin).abs() < 1e-9,
                "k={k}: linear {lin} vs binary {bin}"
            );
        }
    }

    #[test]
    fn concentrates_cuts_on_the_volatile_region() {
        // 30 zeros then 10 wild values: with k=4 most cuts should land in
        // or around the wild suffix, not the constant prefix.
        let v: Vec<f64> = (0..40)
            .map(|i| if i < 30 { 0.0 } else { ((i * 37) % 101) as f64 })
            .collect();
        let p = PrefixSums::build(&v);
        let oracle = Exhaustive::new(VarianceOracle::new(&p, AggKind::Sum), 1);
        let (cuts, _) = dp_cuts(40, 4, 1, &oracle, SearchStrategy::Linear);
        assert!(
            cuts.iter().filter(|&&c| c >= 28).count() >= 2,
            "cuts {cuts:?} should cluster near the volatile suffix"
        );
    }

    #[test]
    fn objective_weakly_decreases_with_more_buckets() {
        let v: Vec<f64> = (0..30).map(|i| ((i * 7) % 23) as f64).collect();
        let p = PrefixSums::build(&v);
        let oracle = Exhaustive::new(VarianceOracle::new(&p, AggKind::Avg), 2);
        let mut last = f64::INFINITY;
        for k in 1..=6 {
            let (_, obj) = dp_cuts(30, k, 1, &oracle, SearchStrategy::Linear);
            assert!(obj <= last + 1e-9, "k={k}: {obj} > {last}");
            last = obj;
        }
    }
}
