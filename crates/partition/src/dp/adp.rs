//! ADP — the approximate dynamic-programming partitioner (Section 4.3.1).
//!
//! This is the `**` algorithm the paper uses in every experiment. It makes
//! the exact DP practical with two approximations:
//!
//! 1. **Sampling**: optimize over `m` uniformly sampled tuples instead of
//!    all `N` (the sampled cut keys transfer back to full-data boundaries);
//! 2. **Discretization**: inside a candidate partition, score only O(1)
//!    candidate queries — the Lemma A.3 median halves for SUM/COUNT, or the
//!    best pre-scored δm-window for AVG (Appendix A.4).
//!
//! Combined with the monotonicity binary search the total cost is
//! O(k·m·log m), and the result is a 2√2-approximation for SUM/COUNT and a
//! 2-approximation for AVG of the optimal max-variance partitioning
//! (Appendix A.5). COUNT short-circuits to the provably optimal equal-size
//! partitioning (Lemma A.1).

use rand::seq::index::sample as index_sample;

use pass_common::rng::rng_from_seed;
use pass_common::{AggKind, PrefixSums, Result};
use pass_table::SortedTable;

use crate::equal::equal_count_cuts;
use crate::maxvar::{MedianSplit, WindowIndex};
use crate::spec::{Partitioner1D, Partitioning1D};
use crate::variance::VarianceOracle;

use super::engine::{dp_cuts, SearchStrategy};

/// The practical sampled + discretized DP partitioner.
#[derive(Debug, Clone, Copy)]
pub struct Adp {
    /// Which aggregate's worst-case variance to minimize.
    pub kind: AggKind,
    /// Optimization sample size `m`.
    pub opt_samples: usize,
    /// Meaningful-overlap fraction δ: queries are assumed to cover at least
    /// `δ·m` sampled tuples of any partition they partially intersect.
    pub delta: f64,
    /// RNG seed for the optimization sample.
    pub seed: u64,
}

impl Adp {
    /// Defaults matching the experimental setup: m = 4096, δ = 1%.
    pub fn new(kind: AggKind) -> Self {
        Self {
            kind,
            opt_samples: 4096,
            delta: 0.01,
            seed: 0x5EED,
        }
    }

    pub fn with_samples(mut self, m: usize) -> Self {
        self.opt_samples = m;
        self
    }

    pub fn with_delta(mut self, delta: f64) -> Self {
        self.delta = delta;
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// δm: the window length / minimum meaningful query size in sample
    /// space. The effective δ shrinks with the partition budget so that
    /// `k` partitions of at least `2δm` samples each can actually exist —
    /// otherwise the Lemma A.4 small-partition convention (variance 0
    /// below `2δm` samples) lets the DP "win" with degenerate all-tiny
    /// partitionings (the Appendix A.1 largeness assumption, enforced).
    fn delta_m(&self, m: usize, k: usize) -> usize {
        let delta = self.delta.min(1.0 / (4.0 * k.max(1) as f64));
        ((delta * m as f64).round() as usize).clamp(2, m.max(2))
    }
}

impl Partitioner1D for Adp {
    fn name(&self) -> &'static str {
        "ADP"
    }

    fn partition(&self, sorted: &SortedTable, k: usize) -> Result<Partitioning1D> {
        let n = sorted.len();
        if n == 0 {
            return Partitioning1D::new(0, Vec::new()); // propagates EmptyInput
        }
        // Lemma A.1: the COUNT optimum is the equal-size partitioning.
        if self.kind == AggKind::Count {
            return Partitioning1D::new(n, equal_count_cuts(n, k));
        }

        let m = self.opt_samples.clamp(1, n);
        // Sorted sample positions (uniform without replacement).
        let positions: Vec<usize> = if m == n {
            (0..n).collect()
        } else {
            let mut rng = rng_from_seed(self.seed);
            let mut p: Vec<usize> = index_sample(&mut rng, n, m).into_iter().collect();
            p.sort_unstable();
            p
        };
        let sample_values: Vec<f64> = positions.iter().map(|&i| sorted.value(i)).collect();
        let prefix = PrefixSums::build(&sample_values);

        let (sample_cuts, _) = match self.kind {
            AggKind::Sum => {
                let oracle = MedianSplit::new(VarianceOracle::new(&prefix, AggKind::Sum));
                dp_cuts(m, k, 1, &oracle, SearchStrategy::Binary)
            }
            AggKind::Avg => {
                let delta_m = self.delta_m(m, k);
                let oracle = WindowIndex::build(&prefix, delta_m);
                // Partitions must hold at least 2δm samples for the window
                // oracle's scores to be meaningful (Lemma A.4's premise).
                dp_cuts(m, k, 2 * delta_m, &oracle, SearchStrategy::Binary)
            }
            _ => unreachable!("COUNT handled above; MIN/MAX have no DP"),
        };

        // Map sample cuts to full-data boundaries: the cut before sample
        // item c lands before the first full row sharing that item's key,
        // so equal keys never straddle a boundary.
        let keys = sorted.keys();
        let mut full_cuts: Vec<usize> = sample_cuts
            .into_iter()
            .map(|c| {
                let key = keys[positions[c]];
                keys.partition_point(|&kk| kk < key)
            })
            .filter(|&c| c > 0 && c < n)
            .collect();
        full_cuts.sort_unstable();
        full_cuts.dedup();
        refine_to_budget(keys, &mut full_cuts, k);
        Partitioning1D::new(n, full_cuts)
    }
}

/// Spend any unused partition budget by repeatedly splitting the largest
/// bucket at its median key boundary. DP ties (regions that do not affect
/// the worst-case objective) and duplicate-key snapping can leave fewer
/// than `k` distinct buckets; by the Section 4.3 monotonicity lemma,
/// splitting a bucket never increases any query's variance, so this
/// refinement is Pareto-improving on the DP's objective while tightening
/// typical-case error.
fn refine_to_budget(keys: &[f64], cuts: &mut Vec<usize>, k: usize) {
    let n = keys.len();
    // Buckets proven unsplittable (single key run), by start position.
    let mut unsplittable: std::collections::HashSet<usize> = Default::default();
    while cuts.len() + 1 < k {
        // Largest splittable bucket.
        let mut best: Option<(usize, usize, usize)> = None; // (len, start, end)
        let mut start = 0;
        for &c in cuts.iter().chain(std::iter::once(&n)) {
            if !unsplittable.contains(&start) && best.is_none_or(|(len, _, _)| c - start > len) {
                best = Some((c - start, start, c));
            }
            start = c;
        }
        let Some((_, lo, hi)) = best else { break };
        // Median split snapped to a key boundary inside (lo, hi).
        let mid = lo + (hi - lo) / 2;
        let key = keys[mid];
        let mut cut = keys[..hi].partition_point(|&kk| kk < key);
        if cut <= lo || cut >= hi {
            // The median key run touches a bucket edge; try its other end.
            cut = keys[..hi].partition_point(|&kk| kk <= key);
            if cut <= lo || cut >= hi {
                // Single-key bucket: genuinely unsplittable.
                unsplittable.insert(lo);
                continue;
            }
        }
        match cuts.binary_search(&cut) {
            Ok(_) => {
                unsplittable.insert(lo); // defensive: avoid spinning
            }
            Err(pos) => cuts.insert(pos, cut),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxvar::{Exhaustive, MaxVarOracle};
    use pass_common::rng::rng_from_seed;
    use rand::Rng;

    fn sorted_from(values: Vec<f64>) -> SortedTable {
        let keys: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        SortedTable::from_sorted(keys, values)
    }

    fn objective(sorted: &SortedTable, p: &Partitioning1D, kind: AggKind) -> f64 {
        let oracle = Exhaustive::new(VarianceOracle::new(sorted.prefix(), kind), 1);
        p.ranges()
            .into_iter()
            .map(|r| oracle.max_variance(r.start, r.end))
            .fold(0.0, f64::max)
    }

    #[test]
    fn count_short_circuits_to_equal_sizes() {
        let s = sorted_from((0..100).map(|i| i as f64).collect());
        let p = Adp::new(AggKind::Count).partition(&s, 4).unwrap();
        assert_eq!(p.cuts(), &[25, 50, 75]);
    }

    #[test]
    fn full_sample_sum_is_near_optimal() {
        // With m = n the only approximation left is the median-split
        // discretization: Appendix A.5 bounds the result by 2√2 × optimum in
        // error, i.e. 8 × optimum in variance. Check that bound.
        let mut rng = rng_from_seed(31);
        for trial in 0..5 {
            let values: Vec<f64> = (0..48)
                .map(|i| {
                    if i % 11 == 0 {
                        rng.gen::<f64>() * 200.0
                    } else {
                        rng.gen::<f64>()
                    }
                })
                .collect();
            let s = sorted_from(values);
            let adp = Adp::new(AggKind::Sum)
                .with_samples(48)
                .partition(&s, 4)
                .unwrap();
            let opt = crate::dp::NaiveDp::new(AggKind::Sum)
                .partition(&s, 4)
                .unwrap();
            let (a, o) = (
                objective(&s, &adp, AggKind::Sum),
                objective(&s, &opt, AggKind::Sum),
            );
            assert!(
                a <= 8.0 * o + 1e-9,
                "trial {trial}: adp {a} vs 8×opt {}",
                8.0 * o
            );
        }
    }

    #[test]
    fn adversarial_data_beats_equal_partitioning() {
        // First 87.5% zeros, rest volatile — the Figure 6 setup in miniature.
        let mut rng = rng_from_seed(32);
        let n = 400;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                if i < 350 {
                    0.0
                } else {
                    100.0 + rng.gen::<f64>() * 40.0 - 20.0
                }
            })
            .collect();
        let s = sorted_from(values);
        let k = 8;
        let adp = Adp::new(AggKind::Sum)
            .with_samples(n)
            .partition(&s, k)
            .unwrap();
        let eq = Partitioning1D::new(n, equal_count_cuts(n, k)).unwrap();
        let (a, e) = (
            objective(&s, &adp, AggKind::Sum),
            objective(&s, &eq, AggKind::Sum),
        );
        assert!(a < e, "ADP {a} should beat EQ {e} on adversarial data");
        // ADP should place most cuts inside the volatile tail.
        assert!(
            adp.cuts().iter().filter(|&&c| c >= 340).count() >= k / 2,
            "cuts {:?}",
            adp.cuts()
        );
    }

    #[test]
    fn sampled_optimization_still_beats_equal() {
        let mut rng = rng_from_seed(33);
        let n = 2000;
        let values: Vec<f64> = (0..n)
            .map(|i| {
                if i < 1750 {
                    0.0
                } else {
                    100.0 + rng.gen::<f64>() * 40.0
                }
            })
            .collect();
        let s = sorted_from(values);
        let adp = Adp::new(AggKind::Sum)
            .with_samples(300)
            .with_seed(5)
            .partition(&s, 8)
            .unwrap();
        let eq = Partitioning1D::new(n, equal_count_cuts(n, 8)).unwrap();
        assert!(objective(&s, &adp, AggKind::Sum) <= objective(&s, &eq, AggKind::Sum));
    }

    #[test]
    fn avg_objective_runs_and_improves_over_single_bucket() {
        let mut rng = rng_from_seed(34);
        let values: Vec<f64> = (0..600)
            .map(|i| {
                if i < 300 {
                    1.0
                } else {
                    rng.gen::<f64>() * 100.0
                }
            })
            .collect();
        let s = sorted_from(values);
        let adp = Adp::new(AggKind::Avg)
            .with_samples(600)
            .with_delta(0.02)
            .partition(&s, 6)
            .unwrap();
        let single = Partitioning1D::single(600);
        assert!(adp.len() > 1);
        assert!(objective(&s, &adp, AggKind::Avg) <= objective(&s, &single, AggKind::Avg));
    }

    #[test]
    fn duplicate_keys_never_straddle_boundaries() {
        // Keys with heavy duplication.
        let keys: Vec<f64> = (0..200).map(|i| (i / 20) as f64).collect();
        let values: Vec<f64> = (0..200).map(|i| (i % 7) as f64 * 10.0).collect();
        let s = SortedTable::from_sorted(keys.clone(), values);
        let p = Adp::new(AggKind::Sum)
            .with_samples(100)
            .partition(&s, 5)
            .unwrap();
        for &c in p.cuts() {
            assert_ne!(
                keys[c - 1],
                keys[c],
                "cut at {c} splits duplicate key {}",
                keys[c]
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let s = sorted_from((0..500).map(|i| ((i * 17) % 97) as f64).collect());
        let a = Adp::new(AggKind::Sum)
            .with_samples(128)
            .partition(&s, 8)
            .unwrap();
        let b = Adp::new(AggKind::Sum)
            .with_samples(128)
            .partition(&s, 8)
            .unwrap();
        assert_eq!(a, b);
    }
}
