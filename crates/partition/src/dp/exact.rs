//! The exact (reference) dynamic programs of Section 4.3.
//!
//! Both use the exhaustive max-variance oracle and therefore compute an
//! optimal partitioning for AVG (and a √2-approximation for SUM, since a 1-D
//! query partially intersects at most two partitions — Lemma 4.1). They are
//! polynomially expensive and exist as ground truth for testing `Adp`, not
//! for production use.

use pass_common::{AggKind, Result};
use pass_table::SortedTable;

use crate::maxvar::Exhaustive;
use crate::spec::{Partitioner1D, Partitioning1D};
use crate::variance::VarianceOracle;

use super::engine::{dp_cuts, SearchStrategy};

/// O(kN⁴): exhaustive oracle, linear `h` scan.
#[derive(Debug, Clone, Copy)]
pub struct NaiveDp {
    pub kind: AggKind,
    /// Minimum meaningful query size (δN of Section 4.2.1).
    pub min_items: usize,
}

impl NaiveDp {
    pub fn new(kind: AggKind) -> Self {
        Self { kind, min_items: 1 }
    }
}

impl Partitioner1D for NaiveDp {
    fn name(&self) -> &'static str {
        "NaiveDP"
    }

    fn partition(&self, sorted: &SortedTable, k: usize) -> Result<Partitioning1D> {
        let n = sorted.len();
        let oracle = Exhaustive::new(
            VarianceOracle::new(sorted.prefix(), self.kind),
            self.min_items,
        );
        let (cuts, _) = dp_cuts(n, k, 1, &oracle, SearchStrategy::Linear);
        Partitioning1D::new(n, cuts)
    }
}

/// O(kN³ log N): exhaustive oracle, binary `h` search via monotonicity.
#[derive(Debug, Clone, Copy)]
pub struct MonotoneDp {
    pub kind: AggKind,
    pub min_items: usize,
}

impl MonotoneDp {
    pub fn new(kind: AggKind) -> Self {
        Self { kind, min_items: 1 }
    }
}

impl Partitioner1D for MonotoneDp {
    fn name(&self) -> &'static str {
        "MonotoneDP"
    }

    fn partition(&self, sorted: &SortedTable, k: usize) -> Result<Partitioning1D> {
        let n = sorted.len();
        let oracle = Exhaustive::new(
            VarianceOracle::new(sorted.prefix(), self.kind),
            self.min_items,
        );
        let (cuts, _) = dp_cuts(n, k, 1, &oracle, SearchStrategy::Binary);
        Partitioning1D::new(n, cuts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxvar::{Exhaustive, MaxVarOracle};
    use pass_common::rng::rng_from_seed;
    use rand::Rng;

    fn sorted_from(values: Vec<f64>) -> SortedTable {
        let keys: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        SortedTable::from_sorted(keys, values)
    }

    /// Objective value of a partitioning under the exhaustive oracle.
    fn objective(sorted: &SortedTable, p: &Partitioning1D, kind: AggKind) -> f64 {
        let oracle = Exhaustive::new(VarianceOracle::new(sorted.prefix(), kind), 1);
        p.ranges()
            .into_iter()
            .map(|r| oracle.max_variance(r.start, r.end))
            .fold(0.0, f64::max)
    }

    #[test]
    fn naive_beats_or_ties_equal_partitioning() {
        let mut rng = rng_from_seed(21);
        let values: Vec<f64> = (0..24)
            .map(|i| {
                if i < 18 {
                    0.0
                } else {
                    rng.gen::<f64>() * 100.0
                }
            })
            .collect();
        let s = sorted_from(values);
        let dp = NaiveDp::new(AggKind::Sum).partition(&s, 4).unwrap();
        let eq = Partitioning1D::new(24, vec![6, 12, 18]).unwrap();
        assert!(objective(&s, &dp, AggKind::Sum) <= objective(&s, &eq, AggKind::Sum) + 1e-9);
    }

    #[test]
    fn naive_is_optimal_among_all_partitionings_small() {
        // Brute-force every 3-bucket partitioning of 10 items and verify the
        // DP matches the optimum.
        let values = vec![0.0, 0.0, 5.0, 0.0, 9.0, 0.0, 0.0, 40.0, 41.0, 0.5];
        let s = sorted_from(values);
        let dp = NaiveDp::new(AggKind::Avg).partition(&s, 3).unwrap();
        let dp_obj = objective(&s, &dp, AggKind::Avg);
        let mut best = f64::INFINITY;
        for c1 in 1..9 {
            for c2 in (c1 + 1)..10 {
                let p = Partitioning1D::new(10, vec![c1, c2]).unwrap();
                best = best.min(objective(&s, &p, AggKind::Avg));
            }
        }
        assert!(
            (dp_obj - best).abs() < 1e-9,
            "dp {dp_obj} vs brute force {best}"
        );
    }

    #[test]
    fn monotone_matches_naive() {
        let mut rng = rng_from_seed(22);
        for trial in 0..5 {
            let values: Vec<f64> = (0..30).map(|_| rng.gen::<f64>() * 10.0).collect();
            let s = sorted_from(values);
            for kind in [AggKind::Sum, AggKind::Avg] {
                let a = NaiveDp::new(kind).partition(&s, 4).unwrap();
                let b = MonotoneDp::new(kind).partition(&s, 4).unwrap();
                let oa = objective(&s, &a, kind);
                let ob = objective(&s, &b, kind);
                assert!(
                    (oa - ob).abs() < 1e-9,
                    "trial {trial} {kind}: naive {oa} vs monotone {ob}"
                );
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(NaiveDp::new(AggKind::Sum).name(), "NaiveDP");
        assert_eq!(MonotoneDp::new(AggKind::Sum).name(), "MonotoneDP");
    }
}
