//! The dynamic programs of Section 4.3.
//!
//! All three share one recurrence over items sorted by predicate key:
//!
//! ```text
//! A[i, j] = min_{h < i} max( A[h, j-1], M([h, i)) )
//! ```
//!
//! where `M` is a maximum-variance oracle. They differ in which `M` they
//! use and how they search `h`:
//!
//! | Partitioner  | `M`                      | `h` search       | Complexity        |
//! |--------------|--------------------------|------------------|-------------------|
//! | [`NaiveDp`]  | exhaustive               | linear scan      | O(kN⁴)            |
//! | [`MonotoneDp`]| exhaustive              | binary search    | O(kN³ log N)      |
//! | [`Adp`]      | discretized, on a sample | binary search    | O(k·m·log m)      |
//!
//! `Adp` is the `**` algorithm the paper uses in all experiments
//! (Section 4.3.1): it optimizes over `m` sampled items with the Lemma A.3
//! median-split oracle (SUM/COUNT) or the Appendix A.4 window index (AVG),
//! then maps the sampled cut positions back to full-data boundaries.

mod adp;
mod engine;
mod exact;

pub use adp::Adp;
pub use engine::{dp_cuts, SearchStrategy};
pub use exact::{MonotoneDp, NaiveDp};
