//! The SUM/COUNT discretization of Lemma A.3.
//!
//! Split the candidate partition at its median item into halves `q1, q2`
//! and return `max(V(q1), V(q2))`. Lemma A.3 proves this is at least a
//! quarter of the true maximum variance, and it costs O(1) per call on top
//! of prefix sums — this is what drops the DP from O(k·m²·…) to
//! O(k·m·log m).

use crate::variance::VarianceOracle;

use super::MaxVarOracle;

/// `M([lo,hi)) ≈ max(V(left half), V(right half))` — a ¼-approximation for
/// SUM and COUNT queries.
#[derive(Debug, Clone, Copy)]
pub struct MedianSplit<'a> {
    oracle: VarianceOracle<'a>,
}

impl<'a> MedianSplit<'a> {
    pub fn new(oracle: VarianceOracle<'a>) -> Self {
        Self { oracle }
    }
}

impl MaxVarOracle for MedianSplit<'_> {
    fn max_variance(&self, lo: usize, hi: usize) -> f64 {
        if hi <= lo {
            return 0.0;
        }
        let mid = lo + (hi - lo) / 2;
        let left = self.oracle.query_variance(lo, hi, lo, mid);
        let right = self.oracle.query_variance(lo, hi, mid, hi);
        left.max(right)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maxvar::Exhaustive;
    use pass_common::rng::rng_from_seed;
    use pass_common::{AggKind, PrefixSums};
    use rand::Rng;

    #[test]
    fn quarter_approximation_holds_on_random_data() {
        // Lemma A.3: V(returned) >= V(optimal) / 4.
        let mut rng = rng_from_seed(42);
        for trial in 0..50 {
            let n = rng.gen_range(8..60);
            let v: Vec<f64> = (0..n)
                .map(|_| {
                    if rng.gen::<f64>() < 0.3 {
                        0.0
                    } else {
                        rng.gen::<f64>() * 100.0
                    }
                })
                .collect();
            let p = PrefixSums::build(&v);
            for kind in [AggKind::Sum, AggKind::Count] {
                let oracle = VarianceOracle::new(&p, kind);
                let approx = MedianSplit::new(oracle).max_variance(0, n);
                let exact = Exhaustive::new(oracle, 1).max_variance(0, n);
                assert!(
                    approx >= exact / 4.0 - 1e-9,
                    "trial {trial} {kind}: approx {approx} < exact/4 {}",
                    exact / 4.0
                );
                assert!(approx <= exact + 1e-9, "approx cannot beat exact");
            }
        }
    }

    #[test]
    fn empty_and_singleton_ranges() {
        let v = vec![1.0, 2.0, 3.0];
        let p = PrefixSums::build(&v);
        let ms = MedianSplit::new(VarianceOracle::new(&p, AggKind::Sum));
        assert_eq!(ms.max_variance(1, 1), 0.0);
        assert_eq!(ms.max_variance(2, 1), 0.0);
        // Singleton: left half empty, right half = the item.
        assert!(ms.max_variance(0, 1) >= 0.0);
    }

    #[test]
    fn constant_data_matches_exhaustive_for_sum() {
        // For constant values the max-variance SUM query is the half split,
        // which is exactly what the median-split oracle evaluates — so the
        // approximation is tight here (16·10·(1 − 10/20) = 80).
        let v = vec![4.0; 20];
        let p = PrefixSums::build(&v);
        let oracle = VarianceOracle::new(&p, AggKind::Sum);
        let approx = MedianSplit::new(oracle).max_variance(0, 20);
        let exact = Exhaustive::new(oracle, 1).max_variance(0, 20);
        assert!((approx - exact).abs() < 1e-12);
        assert!((approx - 80.0).abs() < 1e-12);
    }

    #[test]
    fn count_split_is_exact_at_even_sizes() {
        // COUNT's max-variance query is exactly the half split (Lemma A.1),
        // so the median-split approximation is tight here.
        let v = vec![1.0; 16];
        let p = PrefixSums::build(&v);
        let oracle = VarianceOracle::new(&p, AggKind::Count);
        let approx = MedianSplit::new(oracle).max_variance(0, 16);
        let exact = Exhaustive::new(oracle, 1).max_variance(0, 16);
        assert!((approx - exact).abs() < 1e-12);
    }
}
