//! The AVG discretization of Appendix A.4 (1-D algorithm).
//!
//! Lemma A.4: the AVG query with the largest variance in any partition
//! spans fewer than `2δm` samples, and any such query is covered by two
//! `δm`-length windows. The paper's index therefore stores, for every
//! position, the `δm`-window with the largest **sum of squared values**
//! `Σt²` — a partition-independent score — and evaluates the true variance
//! `V_i(q′)` of the winning window against the actual partition at query
//! time. Lemma A.5 proves `V_i(q′) ≥ V_i(q*) / 4`.
//!
//! We serve the argmax with an idempotent sparse table (O(1) per query
//! after O(m log m) build, a log factor better than the paper's BST).

use pass_common::PrefixSums;

use super::{MaxVarOracle, SparseArgmaxTable};

/// Pre-scored `δm`-length windows (score = `Σt²`) with O(1) range-argmax.
#[derive(Debug, Clone)]
pub struct WindowIndex {
    window: usize,
    n: usize,
    /// Prefix sums of the underlying sequence, for variance evaluation.
    sum: Vec<f64>,
    sum_sq: Vec<f64>,
    table: SparseArgmaxTable,
}

impl WindowIndex {
    /// Build over a value sequence's prefix sums with window length
    /// `window` (= δm). O(m log m).
    pub fn build(prefix: &PrefixSums, window: usize) -> Self {
        let window = window.max(1);
        let n = prefix.len();
        let scores: Vec<f64> = if n >= window {
            (0..=(n - window))
                .map(|i| prefix.range_sum_sq(i, i + window))
                .collect()
        } else {
            Vec::new()
        };
        let table = SparseArgmaxTable::build(&scores);
        // Keep our own prefix copies so the index owns everything it needs
        // at DP time (the DP borrows the sample prefix elsewhere).
        let sum: Vec<f64> = (0..=n).map(|i| prefix.range_sum(0, i)).collect();
        let sum_sq: Vec<f64> = (0..=n).map(|i| prefix.range_sum_sq(0, i)).collect();
        Self {
            window,
            n,
            sum,
            sum_sq,
            table,
        }
    }

    /// Window length δm.
    pub fn window(&self) -> usize {
        self.window
    }

    /// AVG variance of window `[g, g+window)` inside partition `[lo, hi)`.
    fn window_variance(&self, g: usize, lo: usize, hi: usize) -> f64 {
        let n_i = (hi - lo) as f64;
        let w = self.window as f64;
        let s = self.sum[g + self.window] - self.sum[g];
        let s2 = self.sum_sq[g + self.window] - self.sum_sq[g];
        ((n_i * s2 - s * s) / (n_i * w * w)).max(0.0)
    }

    /// The best window fully inside `[lo, hi)` by `Σt²` score, as
    /// `(start_index, score)`.
    pub fn argmax_window(&self, lo: usize, hi: usize) -> Option<(usize, f64)> {
        if hi < lo + self.window || self.table.is_empty() {
            return None;
        }
        let last_start = (hi - self.window).min(self.table.len() - 1);
        let g = self.table.range_argmax(lo, last_start + 1)?;
        Some((g, self.table.score(g)))
    }
}

impl MaxVarOracle for WindowIndex {
    fn max_variance(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(hi <= self.n);
        // Lemma A.4/A.5 assume n_i >= 2δm; smaller partitions are treated
        // as zero-variance ("because of the small number of samples").
        if hi < lo || hi - lo < 2 * self.window {
            return 0.0;
        }
        match self.argmax_window(lo, hi) {
            Some((g, _)) => self.window_variance(g, lo, hi),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::variance::VarianceOracle;
    use pass_common::rng::rng_from_seed;
    use pass_common::AggKind;
    use rand::Rng;

    #[test]
    fn quarter_approximation_vs_meaningful_queries() {
        // Lemma A.5: against all queries with length in [δm, 2δm) — where
        // the true optimum lies (Lemma A.4) — the returned window's variance
        // is at least a quarter of the maximum.
        let mut rng = rng_from_seed(7);
        for trial in 0..40 {
            let n = rng.gen_range(24..80);
            let delta_m = rng.gen_range(2..5);
            let v: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 50.0).collect();
            let prefix = pass_common::PrefixSums::build(&v);
            let idx = WindowIndex::build(&prefix, delta_m);
            let oracle = VarianceOracle::new(&prefix, AggKind::Avg);
            let mut exact = 0.0f64;
            for g in 0..n {
                for w in (g + delta_m)..=(g + 2 * delta_m - 1).min(n) {
                    exact = exact.max(oracle.query_variance(0, n, g, w));
                }
            }
            let approx = idx.max_variance(0, n);
            assert!(
                approx >= exact / 4.0 - 1e-9,
                "trial {trial}: approx {approx} < exact/4 {}",
                exact / 4.0
            );
            // The returned value is itself a genuine query variance, so it
            // cannot exceed the max over all length-δm.. queries.
            assert!(approx <= exact + 1e-9, "trial {trial}");
        }
    }

    #[test]
    fn exact_for_length_delta_m_queries() {
        // Among length-exactly-δm queries the index is exact: it returns
        // the max-Σt² window, and for fixed length the variance is maximal
        // there or the quarter bound cannot bind below the true max.
        let v: Vec<f64> = vec![1.0, 2.0, 100.0, 3.0, 1.0, 2.0, 1.0, 1.0];
        let prefix = pass_common::PrefixSums::build(&v);
        let idx = WindowIndex::build(&prefix, 2);
        let (g, _) = idx.argmax_window(0, 8).unwrap();
        // Best Σt² window must contain the 100.
        assert!(g == 1 || g == 2);
        assert!(idx.max_variance(0, 8) > 0.0);
    }

    #[test]
    fn small_partitions_score_zero() {
        let v = vec![1.0, 100.0, 2.0, 99.0];
        let prefix = pass_common::PrefixSums::build(&v);
        let idx = WindowIndex::build(&prefix, 3);
        // 4 < 2·3: treated as zero-variance.
        assert_eq!(idx.max_variance(0, 4), 0.0);
    }

    #[test]
    fn argmax_respects_range() {
        let v: Vec<f64> = (0..20)
            .map(|i| if i >= 15 { 1000.0 } else { 1.0 })
            .collect();
        let prefix = pass_common::PrefixSums::build(&v);
        let idx = WindowIndex::build(&prefix, 3);
        // Searching only the calm prefix must not return the wild suffix.
        let (start, _) = idx.argmax_window(0, 14).unwrap();
        assert!(start + idx.window() <= 14);
    }

    #[test]
    fn degenerate_inputs() {
        let prefix = pass_common::PrefixSums::build(&[]);
        let idx = WindowIndex::build(&prefix, 5);
        assert_eq!(idx.max_variance(0, 0), 0.0);
        assert!(idx.argmax_window(0, 0).is_none());

        let prefix = pass_common::PrefixSums::build(&[1.0, 2.0]);
        let idx = WindowIndex::build(&prefix, 5);
        assert_eq!(idx.max_variance(0, 2), 0.0);
    }
}
