//! Multi-dimensional range tree over sampled points (Appendix A.3):
//! "In higher dimensions we construct a range tree in O(m log^{d-1} m)
//! time ... Given a query rectangle q the range tree can return Σ t² and
//! Σ t in O(log^{d-1} m) time."
//!
//! A classic layered range tree without fractional cascading: each level
//! is a balanced hierarchy over one predicate dimension whose every
//! canonical node owns a next-level tree over the remaining dimensions;
//! the last level stores sorted coordinates with prefix Σt / Σt². Space is
//! O(m·log^{d-1} m), which is exactly why the paper (and we) deploy it
//! over the *optimization sample*, never the full dataset.

use pass_common::Rect;
use pass_table::Table;

/// Aggregate answer of a rectangle query.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RangeAggregates {
    pub count: u64,
    pub sum: f64,
    pub sum_sq: f64,
}

impl RangeAggregates {
    fn add(&mut self, other: RangeAggregates) {
        self.count += other.count;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
    }
}

/// One level of the tree: a hierarchy over `dim`, or the terminal
/// prefix-sum layer for the last dimension.
#[derive(Debug, Clone)]
enum Level {
    /// Interior level over dimension `dim`: points sorted by that
    /// dimension, recursively halved; each node carries the next-level
    /// tree over its span.
    Inner {
        /// Sorted coordinates of this node's span (for boundary search).
        lo_coord: f64,
        hi_coord: f64,
        len: usize,
        next: Box<Level>,
        children: Option<Box<(Level, Level)>>,
    },
    /// Terminal level: coordinates of the last dimension, sorted, with
    /// prefix sums of the aggregate values.
    Terminal {
        coords: Vec<f64>,
        prefix_sum: Vec<f64>,
        prefix_sq: Vec<f64>,
    },
}

/// A d-dimensional aggregate range tree over a set of table rows.
#[derive(Debug, Clone)]
pub struct RangeTree {
    dims: usize,
    root: Level,
    len: usize,
}

impl RangeTree {
    /// Build over the given rows of `table` (all rows when `rows` is
    /// `None`). O(m log^{d-1} m) time and space.
    pub fn build(table: &Table, rows: Option<&[u32]>) -> Self {
        let rows: Vec<u32> = match rows {
            Some(r) => r.to_vec(),
            None => (0..table.n_rows() as u32).collect(),
        };
        let dims = table.dims();
        let root = build_level(table, rows.clone(), 0, dims);
        Self {
            dims,
            root,
            len: rows.len(),
        }
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no points are indexed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Σ1, Σt, Σt² over points inside `rect` (inclusive bounds).
    pub fn query(&self, rect: &Rect) -> RangeAggregates {
        debug_assert_eq!(rect.dims(), self.dims);
        let mut out = RangeAggregates::default();
        query_level(&self.root, rect, 0, &mut out);
        out
    }
}

fn build_level(table: &Table, mut rows: Vec<u32>, dim: usize, dims: usize) -> Level {
    if dim + 1 == dims {
        // Terminal: sort by the last dimension, prefix sums over values.
        rows.sort_by(|&a, &b| {
            table
                .predicate(dim, a as usize)
                .partial_cmp(&table.predicate(dim, b as usize))
                .expect("NaN predicate")
        });
        let coords: Vec<f64> = rows
            .iter()
            .map(|&r| table.predicate(dim, r as usize))
            .collect();
        let mut prefix_sum = Vec::with_capacity(rows.len() + 1);
        let mut prefix_sq = Vec::with_capacity(rows.len() + 1);
        prefix_sum.push(0.0);
        prefix_sq.push(0.0);
        let (mut s, mut s2) = (0.0, 0.0);
        for &r in &rows {
            let v = table.value(r as usize);
            s += v;
            s2 += v * v;
            prefix_sum.push(s);
            prefix_sq.push(s2);
        }
        return Level::Terminal {
            coords,
            prefix_sum,
            prefix_sq,
        };
    }
    rows.sort_by(|&a, &b| {
        table
            .predicate(dim, a as usize)
            .partial_cmp(&table.predicate(dim, b as usize))
            .expect("NaN predicate")
    });
    build_inner(table, &rows, dim, dims)
}

fn build_inner(table: &Table, rows: &[u32], dim: usize, dims: usize) -> Level {
    let lo_coord = rows
        .first()
        .map(|&r| table.predicate(dim, r as usize))
        .unwrap_or(f64::INFINITY);
    let hi_coord = rows
        .last()
        .map(|&r| table.predicate(dim, r as usize))
        .unwrap_or(f64::NEG_INFINITY);
    let next = Box::new(build_level(table, rows.to_vec(), dim + 1, dims));
    let children = if rows.len() >= 2 {
        let mid = rows.len() / 2;
        Some(Box::new((
            build_inner(table, &rows[..mid], dim, dims),
            build_inner(table, &rows[mid..], dim, dims),
        )))
    } else {
        None
    };
    Level::Inner {
        lo_coord,
        hi_coord,
        len: rows.len(),
        next,
        children,
    }
}

fn query_level(level: &Level, rect: &Rect, dim: usize, out: &mut RangeAggregates) {
    match level {
        Level::Terminal {
            coords,
            prefix_sum,
            prefix_sq,
        } => {
            let lo = coords.partition_point(|&c| c < rect.lo(dim));
            let hi = coords.partition_point(|&c| c <= rect.hi(dim));
            if hi > lo {
                out.add(RangeAggregates {
                    count: (hi - lo) as u64,
                    sum: prefix_sum[hi] - prefix_sum[lo],
                    sum_sq: prefix_sq[hi] - prefix_sq[lo],
                });
            }
        }
        Level::Inner {
            lo_coord,
            hi_coord,
            len,
            next,
            children,
        } => {
            if *len == 0 || *lo_coord > rect.hi(dim) || *hi_coord < rect.lo(dim) {
                return; // disjoint span
            }
            if rect.lo(dim) <= *lo_coord && *hi_coord <= rect.hi(dim) {
                // Canonical node: descend into the next dimension.
                query_level(next, rect, dim + 1, out);
                return;
            }
            match children {
                Some(c) => {
                    query_level(&c.0, rect, dim, out);
                    query_level(&c.1, rect, dim, out);
                }
                None => {
                    // Single point not fully inside in this dimension ⇒ it
                    // would have matched the canonical case; nothing to do.
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;
    use pass_table::datasets::taxi;
    use pass_table::Table;
    use rand::Rng;

    fn naive(table: &Table, rect: &Rect) -> RangeAggregates {
        let mut out = RangeAggregates::default();
        for i in 0..table.n_rows() {
            if table.matches(rect, i) {
                let v = table.value(i);
                out.count += 1;
                out.sum += v;
                out.sum_sq += v * v;
            }
        }
        out
    }

    #[test]
    fn matches_naive_in_two_dims() {
        let t = taxi(800, 1).project(&[1, 2]).unwrap();
        let tree = RangeTree::build(&t, None);
        assert_eq!(tree.len(), 800);
        let full = t.bounding_rect().unwrap();
        let mut rng = rng_from_seed(2);
        for _ in 0..50 {
            let bounds: Vec<(f64, f64)> = (0..2)
                .map(|d| {
                    let a = full.lo(d) + rng.gen::<f64>() * (full.hi(d) - full.lo(d));
                    let b = full.lo(d) + rng.gen::<f64>() * (full.hi(d) - full.lo(d));
                    (a.min(b), a.max(b))
                })
                .collect();
            let rect = Rect::new(&bounds);
            let got = tree.query(&rect);
            let want = naive(&t, &rect);
            assert_eq!(got.count, want.count);
            assert!((got.sum - want.sum).abs() < 1e-6 * want.sum.abs().max(1.0));
            assert!((got.sum_sq - want.sum_sq).abs() < 1e-6 * want.sum_sq.abs().max(1.0));
        }
    }

    #[test]
    fn matches_naive_in_three_dims() {
        let t = taxi(400, 3).project(&[1, 2, 3]).unwrap();
        let tree = RangeTree::build(&t, None);
        let full = t.bounding_rect().unwrap();
        let mut rng = rng_from_seed(4);
        for _ in 0..25 {
            let bounds: Vec<(f64, f64)> = (0..3)
                .map(|d| {
                    let a = full.lo(d) + rng.gen::<f64>() * (full.hi(d) - full.lo(d));
                    let b = full.lo(d) + rng.gen::<f64>() * (full.hi(d) - full.lo(d));
                    (a.min(b), a.max(b))
                })
                .collect();
            let rect = Rect::new(&bounds);
            assert_eq!(tree.query(&rect).count, naive(&t, &rect).count);
        }
    }

    #[test]
    fn one_dim_reduces_to_prefix_sums() {
        let keys: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..100).map(|i| (i % 9) as f64).collect();
        let t = Table::one_dim(keys, values).unwrap();
        let tree = RangeTree::build(&t, None);
        let rect = Rect::interval(10.0, 60.0);
        let got = tree.query(&rect);
        let want = naive(&t, &rect);
        assert_eq!(got.count, want.count);
        assert_eq!(got.sum, want.sum);
    }

    #[test]
    fn subset_of_rows_and_duplicates() {
        // Duplicated coordinates; build over a row subset.
        let x: Vec<f64> = (0..60).map(|i| (i % 5) as f64).collect();
        let y: Vec<f64> = (0..60).map(|i| (i % 3) as f64).collect();
        let v: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let t = Table::new(v, vec![x, y], vec!["v".into(), "x".into(), "y".into()]).unwrap();
        let rows: Vec<u32> = (0..30).collect();
        let tree = RangeTree::build(&t, Some(&rows));
        assert_eq!(tree.len(), 30);
        let rect = Rect::new(&[(1.0, 3.0), (0.0, 1.0)]);
        let want: f64 = rows
            .iter()
            .filter(|&&r| t.matches(&rect, r as usize))
            .map(|&r| t.value(r as usize))
            .sum();
        assert!((tree.query(&rect).sum - want).abs() < 1e-9);
    }

    #[test]
    fn empty_and_degenerate() {
        let t = Table::one_dim(vec![5.0], vec![9.0]).unwrap();
        let tree = RangeTree::build(&t, Some(&[]));
        assert!(tree.is_empty());
        assert_eq!(tree.query(&Rect::interval(0.0, 10.0)).count, 0);
        let tree = RangeTree::build(&t, None);
        assert_eq!(tree.query(&Rect::interval(5.0, 5.0)).count, 1);
        assert_eq!(tree.query(&Rect::interval(6.0, 7.0)).count, 0);
    }
}
