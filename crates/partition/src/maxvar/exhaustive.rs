//! Exact maximum-variance query by exhaustive enumeration — the strawman
//! `M` of Section 4.3. O(len²) per call; used by `NaiveDp`/`MonotoneDp` on
//! small inputs and as the ground truth for the approximation-factor tests
//! of the discretized oracles.

use crate::variance::VarianceOracle;

use super::MaxVarOracle;

/// Exhaustive `M([lo,hi))`: max `V_i(q)` over every contiguous query
/// `[g, w) ⊆ [lo, hi)` containing at least `min_items` rows (the paper's
/// δN meaningful-overlap assumption).
#[derive(Debug, Clone, Copy)]
pub struct Exhaustive<'a> {
    oracle: VarianceOracle<'a>,
    min_items: usize,
}

impl<'a> Exhaustive<'a> {
    pub fn new(oracle: VarianceOracle<'a>, min_items: usize) -> Self {
        Self {
            oracle,
            min_items: min_items.max(1),
        }
    }

    /// The maximizing query range itself, with its variance.
    pub fn argmax(&self, lo: usize, hi: usize) -> Option<(std::ops::Range<usize>, f64)> {
        let mut best: Option<(std::ops::Range<usize>, f64)> = None;
        // For AVG, Lemma A.4 bounds the optimum below 2·min_items samples;
        // still enumerate everything here — this is the reference oracle.
        for g in lo..hi {
            for w in (g + self.min_items)..=hi {
                let v = self.oracle.query_variance(lo, hi, g, w);
                if best.as_ref().is_none_or(|(_, b)| v > *b) {
                    best = Some((g..w, v));
                }
            }
        }
        best
    }
}

impl MaxVarOracle for Exhaustive<'_> {
    fn max_variance(&self, lo: usize, hi: usize) -> f64 {
        self.argmax(lo, hi).map_or(0.0, |(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::{AggKind, PrefixSums};

    #[test]
    fn finds_the_high_variance_pocket() {
        // Mostly constant with one wild range in the middle.
        let mut v = vec![5.0; 30];
        v[12] = 100.0;
        v[13] = -80.0;
        let p = PrefixSums::build(&v);
        let ex = Exhaustive::new(VarianceOracle::new(&p, AggKind::Sum), 2);
        let (range, var) = ex.argmax(0, 30).unwrap();
        assert!(var > 0.0);
        assert!(range.contains(&12) && range.contains(&13));
    }

    #[test]
    fn min_items_filters_tiny_queries() {
        let v = vec![0.0, 100.0, 0.0, 0.0];
        let p = PrefixSums::build(&v);
        // With min_items = 4 the only query is the whole partition.
        let ex = Exhaustive::new(VarianceOracle::new(&p, AggKind::Avg), 4);
        let (range, _) = ex.argmax(0, 4).unwrap();
        assert_eq!(range, 0..4);
    }

    #[test]
    fn empty_when_range_smaller_than_min_items() {
        let v = vec![1.0, 2.0];
        let p = PrefixSums::build(&v);
        let ex = Exhaustive::new(VarianceOracle::new(&p, AggKind::Sum), 3);
        assert!(ex.argmax(0, 2).is_none());
        assert_eq!(ex.max_variance(0, 2), 0.0);
    }

    #[test]
    fn constant_partition_keeps_membership_variance_only() {
        // Constant value 3 in a 10-row partition: the worst SUM query is the
        // half split with V = 9·5·(1 − 5/10) = 22.5 (pure membership
        // uncertainty — the value spread term is zero).
        let v = vec![3.0; 10];
        let p = PrefixSums::build(&v);
        let ex = Exhaustive::new(VarianceOracle::new(&p, AggKind::Sum), 1);
        assert!((ex.max_variance(0, 10) - 22.5).abs() < 1e-12);
    }

    #[test]
    fn count_max_is_half_range() {
        // Lemma A.1: COUNT max variance at N_iq = N_i/2.
        let v = vec![1.0; 16];
        let p = PrefixSums::build(&v);
        let ex = Exhaustive::new(VarianceOracle::new(&p, AggKind::Count), 1);
        let (range, var) = ex.argmax(0, 16).unwrap();
        assert_eq!(range.len(), 8);
        assert!((var - 4.0).abs() < 1e-12); // 8·(1 − 8/16) = 4
    }
}
