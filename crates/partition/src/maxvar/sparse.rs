//! Idempotent sparse table for O(1) range-maximum queries.
//!
//! Built once in O(n log n) over the per-window variance scores; the AVG
//! discretization then answers "max window score inside this candidate
//! partition" in constant time, which is what makes the Section 4.3.1
//! dynamic program O(k·m·log m) overall. (The paper uses a binary search
//! tree with O(log m) queries; max is idempotent so a sparse table does the
//! same job a log factor faster.)

/// Static range-max structure over f64 scores.
#[derive(Debug, Clone)]
pub struct SparseMaxTable {
    /// `levels[j][i]` = max of `scores[i .. i + 2^j]`.
    levels: Vec<Vec<f64>>,
    len: usize,
}

impl SparseMaxTable {
    /// Build over the given scores.
    pub fn build(scores: &[f64]) -> Self {
        let n = scores.len();
        let mut levels: Vec<Vec<f64>> = Vec::new();
        if n > 0 {
            levels.push(scores.to_vec());
            let mut j = 1;
            while (1 << j) <= n {
                let half = 1 << (j - 1);
                let prev = &levels[j - 1];
                let level: Vec<f64> = (0..=(n - (1 << j)))
                    .map(|i| prev[i].max(prev[i + half]))
                    .collect();
                levels.push(level);
                j += 1;
            }
        }
        Self { levels, len: n }
    }

    /// Number of scores indexed.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when built over no scores.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Max of `scores[lo..hi)`; `None` for an empty range.
    pub fn range_max(&self, lo: usize, hi: usize) -> Option<f64> {
        if lo >= hi || hi > self.len {
            return None;
        }
        let span = hi - lo;
        let j = usize::BITS as usize - 1 - span.leading_zeros() as usize;
        let block = 1usize << j;
        Some(self.levels[j][lo].max(self.levels[j][hi - block]))
    }
}

/// Static range-argmax structure: like [`SparseMaxTable`] but returns the
/// *position* of the maximum score, which the AVG window index needs to
/// re-evaluate the winning window's variance against the actual partition
/// size (Appendix A.4 stores the argmax sample `t_g` for the same reason).
#[derive(Debug, Clone)]
pub struct SparseArgmaxTable {
    /// `levels[j][i]` = index of the max of `scores[i .. i + 2^j]`.
    levels: Vec<Vec<u32>>,
    scores: Vec<f64>,
}

impl SparseArgmaxTable {
    pub fn build(scores: &[f64]) -> Self {
        let n = scores.len();
        let mut levels: Vec<Vec<u32>> = Vec::new();
        if n > 0 {
            levels.push((0..n as u32).collect());
            let mut j = 1;
            while (1 << j) <= n {
                let half = 1 << (j - 1);
                let prev = &levels[j - 1];
                let level: Vec<u32> = (0..=(n - (1 << j)))
                    .map(|i| {
                        let a = prev[i];
                        let b = prev[i + half];
                        if scores[a as usize] >= scores[b as usize] {
                            a
                        } else {
                            b
                        }
                    })
                    .collect();
                levels.push(level);
                j += 1;
            }
        }
        Self {
            levels,
            scores: scores.to_vec(),
        }
    }

    /// Index of the maximum of `scores[lo..hi)`; `None` for an empty range.
    pub fn range_argmax(&self, lo: usize, hi: usize) -> Option<usize> {
        if lo >= hi || hi > self.scores.len() {
            return None;
        }
        let span = hi - lo;
        let j = usize::BITS as usize - 1 - span.leading_zeros() as usize;
        let block = 1usize << j;
        let a = self.levels[j][lo];
        let b = self.levels[j][hi - block];
        Some(if self.scores[a as usize] >= self.scores[b as usize] {
            a as usize
        } else {
            b as usize
        })
    }

    /// Score at an index.
    pub fn score(&self, i: usize) -> f64 {
        self.scores[i]
    }

    /// Number of scores indexed.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// True when built over no scores.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::rng::rng_from_seed;
    use rand::Rng;

    #[test]
    fn argmax_matches_naive() {
        let mut rng = rng_from_seed(5);
        let scores: Vec<f64> = (0..150).map(|_| rng.gen::<f64>()).collect();
        let t = SparseArgmaxTable::build(&scores);
        for lo in 0..scores.len() {
            for hi in (lo + 1)..=scores.len() {
                let naive = (lo..hi)
                    .max_by(|&a, &b| scores[a].partial_cmp(&scores[b]).unwrap())
                    .unwrap();
                let got = t.range_argmax(lo, hi).unwrap();
                // Equal scores may tie; compare by value.
                assert_eq!(scores[got], scores[naive], "[{lo},{hi})");
            }
        }
    }

    #[test]
    fn argmax_empty() {
        let t = SparseArgmaxTable::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.range_argmax(0, 1), None);
    }

    #[test]
    fn matches_naive_on_random_data() {
        let mut rng = rng_from_seed(1);
        let scores: Vec<f64> = (0..200).map(|_| rng.gen::<f64>() * 100.0).collect();
        let t = SparseMaxTable::build(&scores);
        for lo in 0..scores.len() {
            for hi in (lo + 1)..=scores.len() {
                let naive = scores[lo..hi].iter().cloned().fold(f64::MIN, f64::max);
                assert_eq!(t.range_max(lo, hi), Some(naive), "[{lo},{hi})");
            }
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let t = SparseMaxTable::build(&[]);
        assert!(t.is_empty());
        assert_eq!(t.range_max(0, 0), None);
        let t = SparseMaxTable::build(&[7.0]);
        assert_eq!(t.range_max(0, 1), Some(7.0));
        assert_eq!(t.range_max(0, 2), None);
        assert_eq!(t.range_max(1, 1), None);
    }

    #[test]
    fn handles_negative_scores() {
        let t = SparseMaxTable::build(&[-5.0, -1.0, -9.0]);
        assert_eq!(t.range_max(0, 3), Some(-1.0));
        assert_eq!(t.range_max(2, 3), Some(-9.0));
    }
}
