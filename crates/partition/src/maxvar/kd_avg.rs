//! The multi-dimensional AVG discretization — Appendix A.4's "second
//! algorithm".
//!
//! For a partition (point set) in d dimensions, build a modified k-d tree
//! whose leaves hold between δm and 2δm points ("if a node contains less
//! than 2δm and more than δm items we create two leaf nodes"), score each
//! leaf by `Σ t²`, and return the AVG variance of the best-scoring leaf's
//! point set as the approximate maximum. The paper shows this is a
//! `δ^{1-1/d}/2` approximation of the true maximum-variance AVG query,
//! with no range tree required ("we can find all the necessary sums in
//! O(m log m) time without constructing a range tree").

use pass_table::Table;

/// Result of the Appendix A.4 second algorithm on one partition.
#[derive(Debug, Clone)]
pub struct KdAvgResult {
    /// Approximate maximum AVG variance `V_i(q')`.
    pub variance: f64,
    /// The rows of the winning leaf (the approximate argmax query).
    pub rows: Vec<u32>,
}

/// Approximate the maximum AVG-query variance among the `rows` of `table`
/// (one candidate partition), with minimum meaningful query size
/// `delta_m` points. Returns `None` when the partition holds fewer than
/// `2·delta_m` points (the Lemma A.4 smallness convention).
pub fn max_avg_variance_kd(table: &Table, rows: &[u32], delta_m: usize) -> Option<KdAvgResult> {
    let delta_m = delta_m.max(1);
    let n_i = rows.len();
    if n_i < 2 * delta_m {
        return None;
    }
    // Recursively median-split until leaves hold < 2δm points, cycling
    // dimensions; collect leaves of >= δm points.
    let mut best: Option<(f64, Vec<u32>)> = None; // (Σt², leaf rows)
    let mut stack: Vec<(Vec<u32>, usize)> = vec![(rows.to_vec(), 0)];
    while let Some((set, depth)) = stack.pop() {
        if set.len() < 2 * delta_m {
            // A leaf (δm <= len < 2δm guaranteed by the splitting rule,
            // except degenerate inputs where we still accept >= δm).
            if set.len() >= delta_m {
                let score: f64 = set
                    .iter()
                    .map(|&r| {
                        let v = table.value(r as usize);
                        v * v
                    })
                    .sum();
                if best.as_ref().is_none_or(|(b, _)| score > *b) {
                    best = Some((score, set));
                }
            }
            continue;
        }
        let dim = depth % table.dims();
        let mut sorted = set;
        sorted.sort_by(|&a, &b| {
            table
                .predicate(dim, a as usize)
                .partial_cmp(&table.predicate(dim, b as usize))
                .expect("NaN predicate")
        });
        let mid = sorted.len() / 2;
        let right = sorted.split_off(mid);
        stack.push((sorted, depth + 1));
        stack.push((right, depth + 1));
    }
    let (_, leaf_rows) = best?;
    // V_i(q') = [n_i·Σt² − (Σt)²] / (n_i·|q'|²)  (Appendix A.2's AVG form).
    let (mut s, mut s2) = (0.0f64, 0.0f64);
    for &r in &leaf_rows {
        let v = table.value(r as usize);
        s += v;
        s2 += v * v;
    }
    let q_len = leaf_rows.len() as f64;
    let variance = ((n_i as f64 * s2 - s * s) / (n_i as f64 * q_len * q_len)).max(0.0);
    Some(KdAvgResult {
        variance,
        rows: leaf_rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::taxi;
    use pass_table::Table;

    fn rows(n: usize) -> Vec<u32> {
        (0..n as u32).collect()
    }

    #[test]
    fn finds_the_high_energy_pocket() {
        // 2-D points; values huge in one spatial corner.
        let n = 400;
        let x: Vec<f64> = (0..n).map(|i| (i % 20) as f64).collect();
        let y: Vec<f64> = (0..n).map(|i| (i / 20) as f64).collect();
        let values: Vec<f64> = (0..n)
            .map(|i| {
                if x[i] < 5.0 && y[i] < 5.0 {
                    100.0 + (i % 7) as f64
                } else {
                    1.0
                }
            })
            .collect();
        let t = Table::new(
            values,
            vec![x.clone(), y.clone()],
            vec!["v".into(), "x".into(), "y".into()],
        )
        .unwrap();
        let result = max_avg_variance_kd(&t, &rows(n), 8).unwrap();
        assert!(result.variance > 0.0);
        // The winning leaf must be dominated by the hot corner.
        let hot = result
            .rows
            .iter()
            .filter(|&&r| x[r as usize] < 5.0 && y[r as usize] < 5.0)
            .count();
        assert!(
            hot * 2 > result.rows.len(),
            "{hot}/{} rows in hot corner",
            result.rows.len()
        );
    }

    #[test]
    fn leaf_sizes_respect_delta_m() {
        let t = taxi(1_000, 3).project(&[1, 2]).unwrap();
        let dm = 16;
        let result = max_avg_variance_kd(&t, &rows(1_000), dm).unwrap();
        assert!(result.rows.len() >= dm);
        assert!(result.rows.len() < 2 * dm);
    }

    #[test]
    fn small_partitions_return_none() {
        let t = taxi(100, 4).project(&[1]).unwrap();
        assert!(max_avg_variance_kd(&t, &rows(100), 64).is_none());
    }

    #[test]
    fn variance_is_a_genuine_query_variance() {
        // The reported variance must match recomputing the formula on the
        // returned rows.
        let t = taxi(500, 5).project(&[1, 2]).unwrap();
        let result = max_avg_variance_kd(&t, &rows(500), 10).unwrap();
        let (mut s, mut s2) = (0.0, 0.0);
        for &r in &result.rows {
            let v = t.value(r as usize);
            s += v;
            s2 += v * v;
        }
        let q = result.rows.len() as f64;
        let expected = (500.0 * s2 - s * s) / (500.0 * q * q);
        assert!((result.variance - expected).abs() < 1e-9);
    }
}
