//! Maximum-variance-query routines (the paper's function `M`, Section 4.3
//! and Appendix A.2–A.4).
//!
//! Given a candidate partition `[lo, hi)` the optimizer needs (an
//! approximation of) the maximum `V_i(q)` over all meaningful queries `q`
//! fully inside it:
//!
//! * [`Exhaustive`] — the exact O(len²) enumeration (the strawman `M`);
//!   reference implementation used by `NaiveDp` and as ground truth in
//!   approximation-factor tests;
//! * [`MedianSplit`] — the SUM/COUNT discretization of Lemma A.3: check
//!   only the two median halves; a ¼-approximation of the max variance in
//!   O(1);
//! * [`WindowIndex`] — the AVG discretization of Appendix A.4: Lemma A.4
//!   shows the max-variance AVG query spans fewer than `2δm` samples, so
//!   pre-score all `δm`-length windows once and serve range-max queries
//!   from an idempotent sparse table in O(1); a ¼-approximation.

mod exhaustive;
mod kd_avg;
mod median_split;
mod range_tree;
mod sparse;
mod window;

pub use exhaustive::Exhaustive;
pub use kd_avg::{max_avg_variance_kd, KdAvgResult};
pub use median_split::MedianSplit;
pub use range_tree::{RangeAggregates, RangeTree};
pub use sparse::{SparseArgmaxTable, SparseMaxTable};
pub use window::WindowIndex;

/// An oracle producing (an approximation of) the maximum query variance
/// inside a row range of the (sorted) underlying sequence.
pub trait MaxVarOracle {
    /// Max (approximate) `V_i(q)` over meaningful queries inside `[lo, hi)`.
    fn max_variance(&self, lo: usize, hi: usize) -> f64;
}
