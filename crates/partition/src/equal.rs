//! Equal partitionings: the EQ baseline of Section 5.3, the key-space
//! variant, and the COUNT optimum of Lemma A.1 (which happens to coincide
//! with EQ).

use pass_common::Result;
use pass_table::SortedTable;

use crate::spec::{Partitioner1D, Partitioning1D};

/// Interior cuts splitting `n` rows into `k` near-equal buckets.
pub(crate) fn equal_count_cuts(n: usize, k: usize) -> Vec<usize> {
    let k = k.clamp(1, n);
    (1..k)
        .map(|j| j * n / k)
        .filter(|&c| c > 0 && c < n)
        .collect()
}

/// Equal-depth (equal-frequency) partitioning — the paper's EQ baseline and
/// the strata constructor for plain stratified sampling.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualDepth;

impl Partitioner1D for EqualDepth {
    fn name(&self) -> &'static str {
        "EQ"
    }

    fn partition(&self, sorted: &SortedTable, k: usize) -> Result<Partitioning1D> {
        Partitioning1D::new(sorted.len(), equal_count_cuts(sorted.len(), k))
    }
}

/// The provably optimal partitioner for 1-D COUNT queries (Lemma A.1):
/// equal-size partitions, constructed in near-linear time. Functionally the
/// same cuts as [`EqualDepth`]; kept as a distinct named partitioner so
/// benchmark tables can report it under its own contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountOptimal;

impl Partitioner1D for CountOptimal {
    fn name(&self) -> &'static str {
        "CountOpt"
    }

    fn partition(&self, sorted: &SortedTable, k: usize) -> Result<Partitioning1D> {
        Partitioning1D::new(sorted.len(), equal_count_cuts(sorted.len(), k))
    }
}

/// Equal-width partitioning of the key space (classic histogram buckets).
/// Not used by PASS itself but a natural comparison point for the
/// partitioning ablation.
#[derive(Debug, Clone, Copy, Default)]
pub struct EqualWidth;

impl Partitioner1D for EqualWidth {
    fn name(&self) -> &'static str {
        "EqWidth"
    }

    fn partition(&self, sorted: &SortedTable, k: usize) -> Result<Partitioning1D> {
        let n = sorted.len();
        if n == 0 {
            return Partitioning1D::new(0, Vec::new());
        }
        let lo = sorted.key(0);
        let hi = sorted.key(n - 1);
        if lo == hi {
            return Ok(Partitioning1D::single(n));
        }
        let k = k.max(1);
        let width = (hi - lo) / k as f64;
        let cuts: Vec<usize> = (1..k)
            .map(|j| {
                let boundary = lo + j as f64 * width;
                sorted.keys().partition_point(|&key| key < boundary)
            })
            .filter(|&c| c > 0 && c < n)
            .collect();
        Partitioning1D::new(n, cuts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sorted_uniform_keys(n: usize) -> SortedTable {
        SortedTable::from_sorted((0..n).map(|i| i as f64).collect(), vec![1.0; n])
    }

    #[test]
    fn equal_depth_bucket_sizes_differ_by_at_most_one() {
        let s = sorted_uniform_keys(103);
        let p = EqualDepth.partition(&s, 8).unwrap();
        let sizes: Vec<usize> = p.ranges().into_iter().map(|r| r.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 103);
    }

    #[test]
    fn k_larger_than_n_degrades_gracefully() {
        let s = sorted_uniform_keys(3);
        let p = EqualDepth.partition(&s, 10).unwrap();
        assert!(p.len() <= 3);
    }

    #[test]
    fn equal_width_splits_key_space() {
        // Keys clustered at both ends: equal-width puts the cut midway in
        // key space, not at the median row.
        let keys = vec![0.0, 0.1, 0.2, 0.3, 9.7, 9.8, 9.9, 10.0];
        let s = SortedTable::from_sorted(keys, vec![1.0; 8]);
        let p = EqualWidth.partition(&s, 2).unwrap();
        assert_eq!(p.cuts(), &[4]); // boundary at key 5.0 → row 4
    }

    #[test]
    fn equal_width_constant_keys_single_bucket() {
        let s = SortedTable::from_sorted(vec![5.0; 10], vec![1.0; 10]);
        let p = EqualWidth.partition(&s, 4).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn count_optimal_equals_equal_depth() {
        let s = sorted_uniform_keys(64);
        assert_eq!(
            CountOptimal.partition(&s, 7).unwrap().cuts(),
            EqualDepth.partition(&s, 7).unwrap().cuts()
        );
    }

    #[test]
    fn names() {
        assert_eq!(EqualDepth.name(), "EQ");
        assert_eq!(CountOptimal.name(), "CountOpt");
        assert_eq!(EqualWidth.name(), "EqWidth");
    }
}
