//! Balanced k-d trees for multi-dimensional PASS (Section 4.4 / 5.4).
//!
//! The higher-dimensional optimizer parameterizes the search space by
//! balanced k-d trees with fanout `2^d`: every expansion splits a leaf at
//! the median of *each* predicate attribute simultaneously. Two expansion
//! policies reproduce the Section 5.4 systems:
//!
//! * **KD-PASS** ([`KdExpansion::MaxVariance`]): greedily expand the leaf
//!   containing the (approximate) maximum-variance query, subject to the
//!   "leaf depths differ by at most 2" balance rule;
//! * **KD-US** ([`KdExpansion::BreadthFirst`]): always expand the
//!   shallowest leaf, ties broken randomly — the baseline's uniform
//!   refinement.
//!
//! Node rectangles are the *tight bounding boxes* of the node's points.
//! This is sound for MCF classification (a node covered by the query rect
//! has all of its rows matching; a node disjoint from it has none) and
//! strictly tighter than splitting-plane boxes.

use rand::Rng;

use pass_common::rng::rng_from_seed;
use pass_common::{AggKind, PassError, Rect, Result};
use pass_table::Table;

/// One node of the expansion tree.
#[derive(Debug, Clone)]
pub struct KdNodeInfo {
    /// Tight bounding rectangle of the node's points.
    pub rect: Rect,
    /// Half-open range into [`KdBuild::perm`].
    pub start: usize,
    pub end: usize,
    /// Child node ids (empty for leaves). Up to `2^d` children.
    pub children: Vec<usize>,
    pub depth: usize,
}

impl KdNodeInfo {
    pub fn is_leaf(&self) -> bool {
        self.children.is_empty()
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A built k-d expansion: an arena of nodes over a permutation of row ids,
/// where every node owns a contiguous `perm` range.
#[derive(Debug, Clone)]
pub struct KdBuild {
    pub perm: Vec<u32>,
    pub nodes: Vec<KdNodeInfo>,
    pub root: usize,
}

impl KdBuild {
    /// Ids of all current leaves, in arena order.
    pub fn leaf_ids(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.nodes[i].is_leaf())
            .collect()
    }

    /// Number of leaves.
    pub fn n_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Row ids (into the original table) owned by a node.
    pub fn rows_of(&self, node: usize) -> &[u32] {
        let n = &self.nodes[node];
        &self.perm[n.start..n.end]
    }
}

/// Which leaf to expand next.
#[derive(Debug, Clone, Copy)]
pub enum KdExpansion {
    /// KD-PASS: leaf with the maximum approximate query variance, with leaf
    /// depths constrained to differ by at most `balance` (the paper uses 2).
    MaxVariance { kind: AggKind, balance: usize },
    /// KD-US: shallowest leaf first, random tie-break.
    BreadthFirst,
}

/// Grow a k-d expansion over the table's predicate space until (at most)
/// `max_leaves` leaves exist or no leaf is expandable.
pub fn build_kd(
    table: &Table,
    max_leaves: usize,
    expansion: KdExpansion,
    seed: u64,
) -> Result<KdBuild> {
    let n = table.n_rows();
    if n == 0 {
        return Err(PassError::EmptyInput("kd build over empty table"));
    }
    if max_leaves == 0 {
        return Err(PassError::InvalidParameter(
            "max_leaves",
            "must be at least 1".into(),
        ));
    }
    let mut build = KdBuild {
        perm: (0..n as u32).collect(),
        nodes: Vec::new(),
        root: 0,
    };
    let root_rect = bounding_rect(table, &build.perm);
    build.nodes.push(KdNodeInfo {
        rect: root_rect,
        start: 0,
        end: n,
        children: Vec::new(),
        depth: 0,
    });

    // Cached per-leaf expansion scores (MaxVariance policy only).
    let mut scores: Vec<f64> = vec![f64::NAN; 1];
    let mut rng = rng_from_seed(seed);

    while build.n_leaves() < max_leaves {
        let leaf = match expansion {
            KdExpansion::MaxVariance { kind, balance } => {
                pick_max_variance_leaf(table, &mut build, &mut scores, kind, balance)
            }
            KdExpansion::BreadthFirst => pick_shallowest_leaf(&build, &mut rng),
        };
        let Some(leaf) = leaf else { break };
        let made = expand_leaf(table, &mut build, leaf);
        if made == 0 {
            // Indivisible leaf: mark it permanently unexpandable by giving
            // it a -inf score / treat via children still empty. Use score.
            if scores.len() < build.nodes.len() {
                scores.resize(build.nodes.len(), f64::NAN);
            }
            scores[leaf] = f64::NEG_INFINITY;
            // For BreadthFirst, avoid an infinite loop on indivisible
            // leaves: if every leaf is indivisible we are done.
            if build
                .leaf_ids()
                .iter()
                .all(|&l| scores.get(l).copied() == Some(f64::NEG_INFINITY))
            {
                break;
            }
            continue;
        }
        scores.resize(build.nodes.len(), f64::NAN);
    }
    Ok(build)
}

/// Tight bounding rectangle of a set of rows.
fn bounding_rect(table: &Table, rows: &[u32]) -> Rect {
    let d = table.dims();
    let mut bounds = vec![(f64::INFINITY, f64::NEG_INFINITY); d];
    for &r in rows {
        for (dim, b) in bounds.iter_mut().enumerate() {
            let v = table.predicate(dim, r as usize);
            if v < b.0 {
                b.0 = v;
            }
            if v > b.1 {
                b.1 = v;
            }
        }
    }
    Rect::new(&bounds)
}

/// Split a leaf at the median of every dimension (fanout 2^d). Returns the
/// number of children created (0 when the leaf is indivisible).
fn expand_leaf(table: &Table, build: &mut KdBuild, leaf: usize) -> usize {
    let (start, end, depth) = {
        let node = &build.nodes[leaf];
        (node.start, node.end, node.depth)
    };
    if end - start < 2 {
        return 0;
    }
    let d = table.dims();
    // A leaf whose bounding box is a single point is indivisible: every
    // split would create identical overlapping children.
    {
        let rect = &build.nodes[leaf].rect;
        if (0..d).all(|dim| rect.lo(dim) == rect.hi(dim)) {
            return 0;
        }
    }
    // Recursively median-split the range across dims 0..d. Splits are
    // *value-based*: rows sharing the boundary value never straddle a
    // split, so sibling bounding boxes are disjoint in the split dimension
    // (a geometric invariant AQP++'s covered-region test relies on).
    let mut ranges = vec![(start, end)];
    for dim in 0..d {
        let mut next = Vec::with_capacity(ranges.len() * 2);
        for (s, e) in ranges {
            if e - s < 2 {
                next.push((s, e));
                continue;
            }
            let slice = &mut build.perm[s..e];
            let target = (e - s) / 2;
            slice.select_nth_unstable_by(target, |&a, &b| {
                table
                    .predicate(dim, a as usize)
                    .partial_cmp(&table.predicate(dim, b as usize))
                    .expect("NaN predicate")
            });
            let pivot = table.predicate(dim, slice[target] as usize);
            // Choose the tie-safe boundary (all `< pivot` left, or all
            // `<= pivot` left) closest to the median.
            let less = slice
                .iter()
                .filter(|&&r| table.predicate(dim, r as usize) < pivot)
                .count();
            let less_eq = slice
                .iter()
                .filter(|&&r| table.predicate(dim, r as usize) <= pivot)
                .count();
            let candidates = [less, less_eq];
            let mid_local = candidates
                .into_iter()
                .filter(|&c| c > 0 && c < e - s)
                .min_by_key(|&c| c.abs_diff(target));
            let Some(mid_local) = mid_local else {
                // Every row shares this dimension's value: no split here.
                next.push((s, e));
                continue;
            };
            // Stable two-way partition by the chosen threshold.
            let threshold_is_less = mid_local == less;
            let (mut left, mut right) = (Vec::new(), Vec::new());
            for &r in slice.iter() {
                let v = table.predicate(dim, r as usize);
                let goes_left = if threshold_is_less {
                    v < pivot
                } else {
                    v <= pivot
                };
                if goes_left {
                    left.push(r);
                } else {
                    right.push(r);
                }
            }
            let mid = s + left.len();
            slice[..left.len()].copy_from_slice(&left);
            slice[left.len()..].copy_from_slice(&right);
            next.push((s, mid));
            next.push((mid, e));
        }
        ranges = next;
    }
    // Degenerate check: if splitting achieved nothing (all coordinates
    // equal), every range but one is empty.
    let nonempty: Vec<(usize, usize)> = ranges.into_iter().filter(|(s, e)| e > s).collect();
    if nonempty.len() < 2 {
        return 0;
    }
    let mut created = 0;
    for (s, e) in nonempty {
        let rect = bounding_rect(table, &build.perm[s..e]);
        build.nodes.push(KdNodeInfo {
            rect,
            start: s,
            end: e,
            children: Vec::new(),
            depth: depth + 1,
        });
        let id = build.nodes.len() - 1;
        build.nodes[leaf].children.push(id);
        created += 1;
    }
    created
}

/// KD-PASS leaf choice: maximum cached approximate variance among leaves
/// whose expansion keeps the depth spread within `balance`.
fn pick_max_variance_leaf(
    table: &Table,
    build: &mut KdBuild,
    scores: &mut Vec<f64>,
    kind: AggKind,
    balance: usize,
) -> Option<usize> {
    let leaves = build.leaf_ids();
    let min_depth = leaves.iter().map(|&l| build.nodes[l].depth).min()?;
    scores.resize(build.nodes.len(), f64::NAN);
    let mut best: Option<(usize, f64)> = None;
    for &l in &leaves {
        let node = &build.nodes[l];
        if node.len() < 2 {
            continue;
        }
        // Expanding creates depth+1 leaves; keep max−min ≤ balance.
        if node.depth + 1 > min_depth + balance {
            continue;
        }
        if scores[l].is_nan() {
            scores[l] = leaf_score(table, build, l, kind);
        }
        if scores[l] == f64::NEG_INFINITY {
            continue;
        }
        if best.is_none_or(|(_, b)| scores[l] > b) {
            best = Some((l, scores[l]));
        }
    }
    best.map(|(l, _)| l)
}

/// KD-US leaf choice: shallowest leaf, random tie-break.
fn pick_shallowest_leaf<R: Rng>(build: &KdBuild, rng: &mut R) -> Option<usize> {
    let leaves: Vec<usize> = build
        .leaf_ids()
        .into_iter()
        .filter(|&l| build.nodes[l].len() >= 2)
        .collect();
    let min_depth = leaves.iter().map(|&l| build.nodes[l].depth).min()?;
    let shallowest: Vec<usize> = leaves
        .into_iter()
        .filter(|&l| build.nodes[l].depth == min_depth)
        .collect();
    shallowest.get(rng.gen_range(0..shallowest.len())).copied()
}

/// Approximate max query variance inside a leaf — the multi-dimensional
/// median-split discretization (Lemma A.3 generalizes to any equal-count
/// split): split the leaf's rows at the median of its widest dimension and
/// score both halves with the Section 4.2.1 formulas.
fn leaf_score(table: &Table, build: &KdBuild, leaf: usize, kind: AggKind) -> f64 {
    let node = &build.nodes[leaf];
    let rows = &build.perm[node.start..node.end];
    let n_i = rows.len();
    if n_i < 2 {
        return f64::NEG_INFINITY;
    }
    // AVG: use Appendix A.4's second algorithm (δm-leaf k-d scoring),
    // with δm scaled to the leaf so every leaf remains scoreable.
    if kind == AggKind::Avg {
        let delta_m = (n_i / 16).clamp(2, 256);
        if let Some(result) = crate::maxvar::max_avg_variance_kd(table, rows, delta_m) {
            return result.variance;
        }
        // Leaf too small for the k-d routine: fall through to the
        // median-split score below.
    }
    // Widest dimension of the bounding box.
    let dim = (0..table.dims())
        .max_by(|&a, &b| {
            let wa = node.rect.hi(a) - node.rect.lo(a);
            let wb = node.rect.hi(b) - node.rect.lo(b);
            wa.partial_cmp(&wb).expect("finite widths")
        })
        .unwrap_or(0);
    // Median split by that dimension (copy; scoring must not reorder perm).
    let mut order: Vec<u32> = rows.to_vec();
    let mid = n_i / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        table
            .predicate(dim, a as usize)
            .partial_cmp(&table.predicate(dim, b as usize))
            .expect("NaN predicate")
    });
    let score_half = |half: &[u32]| -> f64 {
        let n_q = half.len() as f64;
        if n_q == 0.0 {
            return 0.0;
        }
        let (mut s, mut s2) = (0.0, 0.0);
        for &r in half {
            let v = table.value(r as usize);
            s += v;
            s2 += v * v;
        }
        let scatter = (n_i as f64 * s2 - s * s).max(0.0);
        match kind {
            AggKind::Sum => scatter / n_i as f64,
            AggKind::Avg => scatter / (n_i as f64 * n_q * n_q),
            AggKind::Count => n_q * (1.0 - n_q / n_i as f64),
            _ => 0.0,
        }
    };
    score_half(&order[..mid]).max(score_half(&order[mid..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::datasets::{taxi, uniform};

    fn two_dim_table(n: usize, seed: u64) -> Table {
        taxi(n, seed).project(&[1, 2]).unwrap()
    }

    #[test]
    fn root_only_when_max_leaves_is_one() {
        let t = uniform(100, 1);
        let b = build_kd(&t, 1, KdExpansion::BreadthFirst, 0).unwrap();
        assert_eq!(b.n_leaves(), 1);
        assert_eq!(b.nodes.len(), 1);
    }

    #[test]
    fn children_partition_parent_rows() {
        let t = two_dim_table(500, 2);
        let b = build_kd(
            &t,
            16,
            KdExpansion::MaxVariance {
                kind: AggKind::Sum,
                balance: 2,
            },
            0,
        )
        .unwrap();
        for (id, node) in b.nodes.iter().enumerate() {
            if node.is_leaf() {
                continue;
            }
            let child_total: usize = node.children.iter().map(|&c| b.nodes[c].len()).sum();
            assert_eq!(child_total, node.len(), "node {id}");
            // Children ranges are contiguous and inside the parent.
            for &c in &node.children {
                assert!(b.nodes[c].start >= node.start);
                assert!(b.nodes[c].end <= node.end);
                assert_eq!(b.nodes[c].depth, node.depth + 1);
            }
        }
    }

    #[test]
    fn leaves_cover_all_rows_exactly_once() {
        let t = two_dim_table(300, 3);
        let b = build_kd(&t, 12, KdExpansion::BreadthFirst, 7).unwrap();
        let mut seen = vec![false; t.n_rows()];
        for l in b.leaf_ids() {
            for &r in b.rows_of(l) {
                assert!(!seen[r as usize], "row {r} in two leaves");
                seen[r as usize] = true;
            }
        }
        assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn rects_bound_their_rows() {
        let t = two_dim_table(400, 4);
        let b = build_kd(
            &t,
            20,
            KdExpansion::MaxVariance {
                kind: AggKind::Avg,
                balance: 2,
            },
            0,
        )
        .unwrap();
        for (id, node) in b.nodes.iter().enumerate() {
            for &r in &b.perm[node.start..node.end] {
                let point = t.point(r as usize);
                assert!(node.rect.contains_point(&point), "node {id} row {r}");
            }
        }
    }

    #[test]
    fn fanout_is_2_pow_d() {
        let t = two_dim_table(1000, 5);
        let b = build_kd(&t, 5, KdExpansion::BreadthFirst, 1).unwrap();
        let root = &b.nodes[b.root];
        assert_eq!(root.children.len(), 4, "2 dims → fanout 4");
    }

    #[test]
    fn balance_constraint_limits_depth_spread() {
        let t = two_dim_table(2000, 6);
        let b = build_kd(
            &t,
            64,
            KdExpansion::MaxVariance {
                kind: AggKind::Sum,
                balance: 2,
            },
            0,
        )
        .unwrap();
        let depths: Vec<usize> = b.leaf_ids().iter().map(|&l| b.nodes[l].depth).collect();
        let min = *depths.iter().min().unwrap();
        let max = *depths.iter().max().unwrap();
        assert!(max - min <= 2, "depth spread {min}..{max}");
    }

    #[test]
    fn breadth_first_is_near_perfectly_balanced() {
        let t = two_dim_table(2000, 7);
        let b = build_kd(&t, 16, KdExpansion::BreadthFirst, 3).unwrap();
        let depths: Vec<usize> = b.leaf_ids().iter().map(|&l| b.nodes[l].depth).collect();
        let min = *depths.iter().min().unwrap();
        let max = *depths.iter().max().unwrap();
        assert!(max - min <= 1, "breadth-first spread {min}..{max}");
    }

    #[test]
    fn max_variance_targets_volatile_region() {
        // 1-D table: calm first half, wild second half. The max-variance
        // expansion should refine the wild side more.
        let n = 1024;
        let keys: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    1.0
                } else {
                    ((i * 37) % 100) as f64
                }
            })
            .collect();
        let t = Table::one_dim(keys, values).unwrap();
        let b = build_kd(
            &t,
            8,
            KdExpansion::MaxVariance {
                kind: AggKind::Sum,
                balance: 8,
            },
            0,
        )
        .unwrap();
        let volatile_leaves = b
            .leaf_ids()
            .iter()
            .filter(|&&l| b.nodes[l].rect.lo(0) >= (n / 2) as f64 - 1.0)
            .count();
        let calm_leaves = b.n_leaves() - volatile_leaves;
        assert!(
            volatile_leaves > calm_leaves,
            "volatile {volatile_leaves} vs calm {calm_leaves}"
        );
    }

    #[test]
    fn sibling_boxes_are_value_disjoint_under_heavy_ties() {
        // Categorical-style dimension with few distinct values: sibling
        // bounding boxes must never overlap (ties cannot straddle splits).
        let n = 2_000;
        let keys: Vec<f64> = (0..n).map(|i| ((i * 7) % 5) as f64).collect();
        let other: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let values: Vec<f64> = (0..n).map(|i| (i % 13) as f64).collect();
        let t = Table::new(
            values,
            vec![keys, other],
            vec!["v".into(), "cat".into(), "x".into()],
        )
        .unwrap();
        let b = build_kd(&t, 32, KdExpansion::BreadthFirst, 1).unwrap();
        // Check all leaf pairs: their point sets are disjoint by
        // construction; their rects must not properly overlap (sharing at
        // most nothing, since splits are value-based).
        let leaves = b.leaf_ids();
        for (i, &a) in leaves.iter().enumerate() {
            for &c in &leaves[i + 1..] {
                let ra = &b.nodes[a].rect;
                let rc = &b.nodes[c].rect;
                // Disjoint in at least one dimension, strictly.
                let separated = (0..2).any(|d| ra.hi(d) < rc.lo(d) || rc.hi(d) < ra.lo(d));
                assert!(separated, "leaves {a} and {c} overlap: {ra:?} vs {rc:?}");
            }
        }
    }

    #[test]
    fn indivisible_data_terminates() {
        // All rows at the same point: nothing to split.
        let t = Table::one_dim(vec![5.0; 50], vec![1.0; 50]).unwrap();
        let b = build_kd(&t, 8, KdExpansion::BreadthFirst, 0).unwrap();
        assert_eq!(b.n_leaves(), 1);
        let b = build_kd(
            &t,
            8,
            KdExpansion::MaxVariance {
                kind: AggKind::Sum,
                balance: 2,
            },
            0,
        )
        .unwrap();
        assert_eq!(b.n_leaves(), 1);
    }

    #[test]
    fn empty_table_rejected() {
        let t = Table::one_dim(vec![], vec![]).unwrap();
        assert!(build_kd(&t, 4, KdExpansion::BreadthFirst, 0).is_err());
    }
}
