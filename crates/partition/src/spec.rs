//! Partitioning representation and the 1-D partitioner contract.

use pass_common::{PassError, Result};
use pass_table::SortedTable;

/// A 1-D partitioning of a sorted table into contiguous buckets, stored as
/// interior cut positions: `cuts = [c_1, ..., c_{B-1}]` (strictly increasing,
/// each in `1..n`) yields buckets `[0,c_1), [c_1,c_2), ..., [c_{B-1}, n)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partitioning1D {
    n: usize,
    cuts: Vec<usize>,
}

impl Partitioning1D {
    /// Validate and wrap interior cut positions over `n` rows.
    pub fn new(n: usize, mut cuts: Vec<usize>) -> Result<Self> {
        if n == 0 {
            return Err(PassError::EmptyInput("partitioning over empty table"));
        }
        cuts.sort_unstable();
        cuts.dedup();
        if cuts.iter().any(|&c| c == 0 || c >= n) {
            return Err(PassError::InvalidParameter(
                "cuts",
                format!("interior cuts must lie in 1..{n}"),
            ));
        }
        Ok(Self { n, cuts })
    }

    /// The trivial single-bucket partitioning.
    pub fn single(n: usize) -> Self {
        Self {
            n,
            cuts: Vec::new(),
        }
    }

    /// Number of buckets `B`.
    pub fn len(&self) -> usize {
        self.cuts.len() + 1
    }

    /// Never empty (at least one bucket).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total number of rows.
    pub fn n_rows(&self) -> usize {
        self.n
    }

    /// Interior cut positions.
    pub fn cuts(&self) -> &[usize] {
        &self.cuts
    }

    /// Half-open row ranges of all buckets, in order.
    pub fn ranges(&self) -> Vec<std::ops::Range<usize>> {
        let mut out = Vec::with_capacity(self.len());
        let mut start = 0;
        for &c in &self.cuts {
            out.push(start..c);
            start = c;
        }
        out.push(start..self.n);
        out
    }

    /// The bucket index containing sorted row `row`.
    pub fn bucket_of(&self, row: usize) -> usize {
        debug_assert!(row < self.n);
        self.cuts.partition_point(|&c| c <= row)
    }

    /// Per-bucket inclusive key intervals read off the sorted table.
    /// Buckets inherit the keys of their first and last row.
    pub fn key_bounds(&self, sorted: &SortedTable) -> Vec<(f64, f64)> {
        debug_assert_eq!(sorted.len(), self.n);
        self.ranges()
            .into_iter()
            .map(|r| (sorted.key(r.start), sorted.key(r.end - 1)))
            .collect()
    }
}

/// A 1-D partitioning algorithm: given a sorted table and a bucket budget
/// `k`, produce at most `k` buckets.
pub trait Partitioner1D {
    /// Name printed in benchmark tables (e.g. `"ADP"`, `"EQ"`).
    fn name(&self) -> &'static str;

    /// Compute the partitioning.
    fn partition(&self, sorted: &SortedTable, k: usize) -> Result<Partitioning1D>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_table::SortedTable;

    #[test]
    fn ranges_cover_all_rows_without_overlap() {
        let p = Partitioning1D::new(10, vec![3, 7]).unwrap();
        assert_eq!(p.len(), 3);
        assert_eq!(p.ranges(), vec![0..3, 3..7, 7..10]);
    }

    #[test]
    fn cuts_are_sorted_and_deduped() {
        let p = Partitioning1D::new(10, vec![7, 3, 7]).unwrap();
        assert_eq!(p.cuts(), &[3, 7]);
    }

    #[test]
    fn invalid_cuts_rejected() {
        assert!(Partitioning1D::new(10, vec![0]).is_err());
        assert!(Partitioning1D::new(10, vec![10]).is_err());
        assert!(Partitioning1D::new(0, vec![]).is_err());
    }

    #[test]
    fn single_bucket() {
        let p = Partitioning1D::single(5);
        assert_eq!(p.len(), 1);
        assert_eq!(p.ranges(), vec![0..5]);
        assert!(!p.is_empty());
    }

    #[test]
    fn bucket_of_maps_rows() {
        let p = Partitioning1D::new(10, vec![3, 7]).unwrap();
        assert_eq!(p.bucket_of(0), 0);
        assert_eq!(p.bucket_of(2), 0);
        assert_eq!(p.bucket_of(3), 1);
        assert_eq!(p.bucket_of(6), 1);
        assert_eq!(p.bucket_of(7), 2);
        assert_eq!(p.bucket_of(9), 2);
    }

    #[test]
    fn key_bounds_from_sorted_table() {
        let s = SortedTable::from_sorted(vec![1.0, 2.0, 5.0, 6.0, 9.0], vec![0.0; 5]);
        let p = Partitioning1D::new(5, vec![2]).unwrap();
        assert_eq!(p.key_bounds(&s), vec![(1.0, 2.0), (5.0, 9.0)]);
    }
}
