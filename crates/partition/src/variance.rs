//! The `V_i(q)` variance oracles of Section 4.2.1.
//!
//! For a query `q` fully inside partition `b_i` (with `N_i` rows, of which
//! `N_{i,q}` match the query):
//!
//! * AVG:   `V_i(q) = (1/N_i) · (1/N_{i,q}²) · [N_i·Σt² − (Σt)²]`
//! * SUM:   `V_i(q) = (1/N_i) · [N_i·Σt² − (Σt)²]`
//! * COUNT: the SUM formula with `t_h = 1`, i.e.
//!   `V_i(q) = N_{i,q}·(1 − N_{i,q}/N_i)`
//!
//! The bracket is the *scatter* `N_i·Σt² − (Σt)²` over the query's rows,
//! served in O(1) by [`PrefixSums`]. The same formulas apply verbatim in
//! sample space (Appendix A.2) up to the global `(N_i/n_i)²` ratio, which is
//! constant across partitions under the Appendix A.1 assumption and
//! therefore irrelevant to the arg-min.

use pass_common::{AggKind, PrefixSums};

/// O(1) variance oracle over a value sequence (full data or a sample),
/// sorted by predicate key.
#[derive(Debug, Clone, Copy)]
pub struct VarianceOracle<'a> {
    prefix: &'a PrefixSums,
    kind: AggKind,
}

impl<'a> VarianceOracle<'a> {
    pub fn new(prefix: &'a PrefixSums, kind: AggKind) -> Self {
        debug_assert!(
            matches!(kind, AggKind::Sum | AggKind::Count | AggKind::Avg),
            "variance oracles exist for SUM/COUNT/AVG only"
        );
        Self { prefix, kind }
    }

    /// The aggregate kind this oracle scores.
    pub fn kind(&self) -> AggKind {
        self.kind
    }

    /// `V_i(q)` for the query occupying rows `[q_lo, q_hi)` of a partition
    /// occupying rows `[p_lo, p_hi)`. The query must lie inside the
    /// partition.
    pub fn query_variance(&self, p_lo: usize, p_hi: usize, q_lo: usize, q_hi: usize) -> f64 {
        debug_assert!(p_lo <= q_lo && q_hi <= p_hi && q_lo <= q_hi);
        let n_i = (p_hi - p_lo) as f64;
        let n_iq = (q_hi - q_lo) as f64;
        if n_i == 0.0 || n_iq == 0.0 {
            return 0.0;
        }
        match self.kind {
            AggKind::Sum => {
                let s = self.prefix.range_sum(q_lo, q_hi);
                let s2 = self.prefix.range_sum_sq(q_lo, q_hi);
                ((n_i * s2 - s * s) / n_i).max(0.0)
            }
            AggKind::Avg => {
                let s = self.prefix.range_sum(q_lo, q_hi);
                let s2 = self.prefix.range_sum_sq(q_lo, q_hi);
                ((n_i * s2 - s * s) / (n_i * n_iq * n_iq)).max(0.0)
            }
            AggKind::Count => (n_iq * (1.0 - n_iq / n_i)).max(0.0),
            _ => unreachable!("constructor rejects MIN/MAX"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn oracle_data() -> (Vec<f64>, PrefixSums) {
        let v = vec![2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let p = PrefixSums::build(&v);
        (v, p)
    }

    #[test]
    fn sum_variance_matches_formula() {
        let (v, p) = oracle_data();
        let o = VarianceOracle::new(&p, AggKind::Sum);
        // Partition = whole sequence; query = rows [2, 6).
        let n_i = v.len() as f64;
        let s: f64 = v[2..6].iter().sum();
        let s2: f64 = v[2..6].iter().map(|x| x * x).sum();
        let expected = (n_i * s2 - s * s) / n_i;
        assert!((o.query_variance(0, 8, 2, 6) - expected).abs() < 1e-10);
    }

    #[test]
    fn avg_variance_matches_formula() {
        let (v, p) = oracle_data();
        let o = VarianceOracle::new(&p, AggKind::Avg);
        let n_i = v.len() as f64;
        let n_iq = 4.0;
        let s: f64 = v[2..6].iter().sum();
        let s2: f64 = v[2..6].iter().map(|x| x * x).sum();
        let expected = (n_i * s2 - s * s) / (n_i * n_iq * n_iq);
        assert!((o.query_variance(0, 8, 2, 6) - expected).abs() < 1e-10);
    }

    #[test]
    fn count_variance_peaks_at_half() {
        let (_, p) = oracle_data();
        let o = VarianceOracle::new(&p, AggKind::Count);
        // Lemma A.1: V = X(N - X)/N maximized at X = N/2.
        let half = o.query_variance(0, 8, 0, 4);
        for q_hi in 1..=8 {
            assert!(o.query_variance(0, 8, 0, q_hi) <= half + 1e-12);
        }
        assert_eq!(o.query_variance(0, 8, 0, 8), 0.0); // whole partition
    }

    #[test]
    fn monotone_in_partition_growth() {
        // Section 4.3: V_x(q) <= V_y(q) when b_x ⊆ b_y (same query rows).
        let (_, p) = oracle_data();
        for kind in [AggKind::Sum, AggKind::Avg, AggKind::Count] {
            let o = VarianceOracle::new(&p, kind);
            let narrow = o.query_variance(2, 6, 3, 5);
            let wide = o.query_variance(0, 8, 3, 5);
            assert!(
                narrow <= wide + 1e-12,
                "{kind}: narrow {narrow} > wide {wide}"
            );
        }
    }

    #[test]
    fn empty_query_or_partition_is_zero() {
        let (_, p) = oracle_data();
        let o = VarianceOracle::new(&p, AggKind::Sum);
        assert_eq!(o.query_variance(0, 8, 3, 3), 0.0);
        assert_eq!(o.query_variance(4, 4, 4, 4), 0.0);
    }

    #[test]
    fn constant_values_reduce_to_membership_variance() {
        // With constant value c the SUM scatter collapses to the COUNT form
        // scaled by c²: V_sum = c²·N_iq·(1 − N_iq/N_i). The membership
        // uncertainty (how many tuples match) never vanishes — only the
        // value-spread term does.
        let v = vec![5.0; 16];
        let p = PrefixSums::build(&v);
        let o_sum = VarianceOracle::new(&p, AggKind::Sum);
        let o_count = VarianceOracle::new(&p, AggKind::Count);
        let vs = o_sum.query_variance(0, 16, 4, 12);
        let vc = o_count.query_variance(0, 16, 4, 12);
        assert!((vs - 25.0 * vc).abs() < 1e-9, "sum {vs} vs 25·count {vc}");
        assert!(vc > 0.0);
        // Querying the whole partition leaves no uncertainty at all.
        assert_eq!(o_sum.query_variance(0, 16, 0, 16), 0.0);
        assert_eq!(o_count.query_variance(0, 16, 0, 16), 0.0);
    }

    #[test]
    #[should_panic(expected = "variance oracles exist")]
    #[cfg(debug_assertions)]
    fn min_is_rejected() {
        let p = PrefixSums::build(&[1.0]);
        let _ = VarianceOracle::new(&p, AggKind::Min);
    }
}
