//! The AQP++ hill-climbing partition selector (the Section 5.1.3 baseline).
//!
//! AQP++ [Peng et al. 2018] chooses which aggregate queries to precompute by
//! iterative hill climbing over boundary positions rather than by dynamic
//! programming. Following the paper's re-implementation ("we implemented the
//! hill-climbing algorithm described in the AQP++ paper ... partition the
//! dataset with the hill-climbing algorithm then pre-compute aggregations"),
//! we start from equal-depth boundaries and greedily move one boundary at a
//! time while the worst-case partition variance improves.
//!
//! Section 5.3 notes their implementation "performs very similar to the
//! equal partitioning" — a useful sanity property the tests assert.

use pass_common::{AggKind, Result};
use pass_table::SortedTable;

use crate::maxvar::{MaxVarOracle, MedianSplit};
use crate::spec::{Partitioner1D, Partitioning1D};
use crate::variance::VarianceOracle;

/// Hill-climbing boundary optimizer.
#[derive(Debug, Clone, Copy)]
pub struct HillClimb {
    pub kind: AggKind,
    /// Maximum full passes over the boundary set.
    pub max_rounds: usize,
}

impl HillClimb {
    pub fn new(kind: AggKind) -> Self {
        Self {
            kind,
            max_rounds: 20,
        }
    }

    /// Worst partition score under the O(1) median-split oracle.
    fn objective(oracle: &MedianSplit<'_>, cuts: &[usize], n: usize) -> f64 {
        let mut worst = 0.0f64;
        let mut start = 0;
        for &c in cuts.iter().chain(std::iter::once(&n)) {
            worst = worst.max(oracle.max_variance(start, c));
            start = c;
        }
        worst
    }
}

impl Partitioner1D for HillClimb {
    fn name(&self) -> &'static str {
        "HillClimb"
    }

    fn partition(&self, sorted: &SortedTable, k: usize) -> Result<Partitioning1D> {
        let n = sorted.len();
        let k = k.clamp(1, n.max(1));
        let mut cuts: Vec<usize> = (1..k).map(|j| j * n / k).collect();
        cuts.retain(|&c| c > 0 && c < n);
        if n == 0 || cuts.is_empty() {
            return Partitioning1D::new(n, cuts);
        }

        // COUNT's optimum is the equal start point already (Lemma A.1).
        let scoring_kind = if self.kind == AggKind::Count {
            return Partitioning1D::new(n, cuts);
        } else {
            AggKind::Sum // AQP++ scores with a single generic objective
        };
        let oracle = MedianSplit::new(VarianceOracle::new(sorted.prefix(), scoring_kind));

        let mut best_obj = Self::objective(&oracle, &cuts, n);
        let mut step = (n / (4 * k)).max(1);
        for _ in 0..self.max_rounds {
            let mut improved = false;
            for i in 0..cuts.len() {
                let lo_limit = if i == 0 { 1 } else { cuts[i - 1] + 1 };
                let hi_limit = if i + 1 == cuts.len() {
                    n - 1
                } else {
                    cuts[i + 1] - 1
                };
                for candidate in [cuts[i].saturating_sub(step), cuts[i] + step] {
                    let candidate = candidate.clamp(lo_limit, hi_limit);
                    if candidate == cuts[i] {
                        continue;
                    }
                    let old = cuts[i];
                    cuts[i] = candidate;
                    let obj = Self::objective(&oracle, &cuts, n);
                    if obj < best_obj {
                        best_obj = obj;
                        improved = true;
                    } else {
                        cuts[i] = old;
                    }
                }
            }
            if !improved {
                if step == 1 {
                    break;
                }
                step = (step / 2).max(1);
            }
        }
        // Snap cuts to key boundaries: a cut inside a run of equal keys
        // would make adjacent partition rectangles overlap, which breaks
        // the geometric covered-region test AQP++'s gap estimator uses.
        let keys = sorted.keys();
        let snapped: Vec<usize> = cuts
            .into_iter()
            .map(|c| {
                let key = keys[c];
                keys.partition_point(|&k| k < key)
            })
            .filter(|&c| c > 0 && c < n)
            .collect();
        Partitioning1D::new(n, snapped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equal::EqualDepth;
    use crate::maxvar::Exhaustive;
    use pass_common::rng::rng_from_seed;
    use rand::Rng;

    fn sorted_from(values: Vec<f64>) -> SortedTable {
        SortedTable::from_sorted((0..values.len()).map(|i| i as f64).collect(), values)
    }

    fn exhaustive_objective(s: &SortedTable, p: &Partitioning1D, kind: AggKind) -> f64 {
        let oracle = Exhaustive::new(VarianceOracle::new(s.prefix(), kind), 1);
        p.ranges()
            .into_iter()
            .map(|r| oracle.max_variance(r.start, r.end))
            .fold(0.0, f64::max)
    }

    #[test]
    fn never_worse_than_its_equal_depth_start() {
        let mut rng = rng_from_seed(41);
        let values: Vec<f64> = (0..200)
            .map(|i| {
                if i < 150 {
                    0.0
                } else {
                    rng.gen::<f64>() * 100.0
                }
            })
            .collect();
        let s = sorted_from(values);
        let hc = HillClimb::new(AggKind::Sum).partition(&s, 8).unwrap();
        let eq = EqualDepth.partition(&s, 8).unwrap();
        assert!(
            exhaustive_objective(&s, &hc, AggKind::Sum)
                <= exhaustive_objective(&s, &eq, AggKind::Sum) + 1e-9
        );
    }

    #[test]
    fn similar_to_equal_on_homogeneous_data() {
        // Section 5.3's observation: on unremarkable data hill climbing
        // stays close to equal partitioning.
        let mut rng = rng_from_seed(42);
        let values: Vec<f64> = (0..160).map(|_| rng.gen::<f64>()).collect();
        let s = sorted_from(values);
        let hc = HillClimb::new(AggKind::Sum).partition(&s, 4).unwrap();
        let eq = EqualDepth.partition(&s, 4).unwrap();
        for (a, b) in hc.cuts().iter().zip(eq.cuts()) {
            assert!(
                (*a as i64 - *b as i64).unsigned_abs() <= 40,
                "hc cut {a} far from eq cut {b}"
            );
        }
    }

    #[test]
    fn count_returns_equal_cuts_directly() {
        let s = sorted_from(vec![1.0; 100]);
        let p = HillClimb::new(AggKind::Count).partition(&s, 5).unwrap();
        assert_eq!(p.cuts(), &[20, 40, 60, 80]);
    }

    #[test]
    fn keeps_cuts_ordered_and_valid() {
        let mut rng = rng_from_seed(43);
        let values: Vec<f64> = (0..300).map(|_| rng.gen::<f64>() * 50.0).collect();
        let s = sorted_from(values);
        let p = HillClimb::new(AggKind::Sum).partition(&s, 10).unwrap();
        let cuts = p.cuts();
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(cuts.iter().all(|&c| c > 0 && c < 300));
    }

    #[test]
    fn single_bucket_request() {
        let s = sorted_from(vec![1.0, 2.0, 3.0]);
        let p = HillClimb::new(AggKind::Sum).partition(&s, 1).unwrap();
        assert_eq!(p.len(), 1);
    }
}
