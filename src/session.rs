//! The top-level facade: one table, a set of named engines, single and
//! batched queries, and workload evaluation — the single entry point the
//! examples, integration tests, and benchmarks drive.

use std::cell::OnceCell;
use std::time::Instant;

use pass_baselines::Engine;
use pass_common::{EngineSpec, Estimate, PassError, Query, Result, Synopsis};
use pass_table::Table;
use pass_workload::{run_workload, QueryOutcome, Truth, WorkloadSummary};

struct SessionEngine {
    name: String,
    synopsis: Box<dyn Synopsis>,
    build_ms: f64,
}

/// A query session over one table and any number of named engines.
///
/// Engines are added declaratively via [`EngineSpec`]; the session owns
/// the built synopses, answers single ([`estimate`](Session::estimate))
/// and batched ([`estimate_many`](Session::estimate_many)) queries, and
/// evaluates whole workloads with ground truth computed once and shared
/// across engines.
///
/// ```
/// use pass::{EngineSpec, Session};
/// use pass::common::{AggKind, Query};
/// use pass::table::datasets::uniform;
///
/// let mut session = Session::new(uniform(10_000, 42));
/// session.add_engine("pass", &EngineSpec::pass()).unwrap();
/// session.add_engine("us", &EngineSpec::uniform(500)).unwrap();
/// let q = Query::interval(AggKind::Sum, 0.2, 0.7);
/// let est = session.estimate("pass", &q).unwrap();
/// assert!(est.value > 0.0);
/// ```
pub struct Session {
    table: Table,
    truth: OnceCell<Truth>,
    engines: Vec<SessionEngine>,
}

impl Session {
    /// Start a session over a table with no engines yet.
    pub fn new(table: Table) -> Self {
        Session {
            table,
            truth: OnceCell::new(),
            engines: Vec::new(),
        }
    }

    /// Start a session and build a set of named engines in one step.
    pub fn with_engines(table: Table, engines: &[(&str, EngineSpec)]) -> Result<Self> {
        let mut session = Session::new(table);
        for (name, spec) in engines {
            session.add_engine(*name, spec)?;
        }
        Ok(session)
    }

    /// Build the engine `spec` describes and register it under `name`.
    /// Re-using a name replaces the previous engine (rebuild-in-place).
    pub fn add_engine(&mut self, name: impl Into<String>, spec: &EngineSpec) -> Result<&mut Self> {
        let name = name.into();
        let start = Instant::now();
        let synopsis = Engine::build(&self.table, spec)?;
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        self.insert(SessionEngine {
            name,
            synopsis,
            build_ms,
        });
        Ok(self)
    }

    /// Register an already-built synopsis (escape hatch for hand-built or
    /// externally updated engines, e.g. a `Pass` absorbing a live stream).
    pub fn add_synopsis(
        &mut self,
        name: impl Into<String>,
        synopsis: Box<dyn Synopsis>,
    ) -> &mut Self {
        self.insert(SessionEngine {
            name: name.into(),
            synopsis,
            build_ms: 0.0,
        });
        self
    }

    /// Insert-or-replace by name, preserving insertion order.
    fn insert(&mut self, engine: SessionEngine) {
        match self.engines.iter_mut().find(|e| e.name == engine.name) {
            Some(slot) => *slot = engine,
            None => self.engines.push(engine),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Registered engine names, in insertion order.
    pub fn engine_names(&self) -> Vec<&str> {
        self.engines.iter().map(|e| e.name.as_str()).collect()
    }

    /// Look up an engine by name.
    pub fn engine(&self, name: &str) -> Option<&dyn Synopsis> {
        self.engines
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.synopsis.as_ref() as &dyn Synopsis)
    }

    /// The spec an engine was built from.
    pub fn spec(&self, name: &str) -> Option<EngineSpec> {
        self.engine(name).map(|e| e.spec())
    }

    /// Milliseconds spent building an engine.
    pub fn build_ms(&self, name: &str) -> Option<f64> {
        self.engines
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.build_ms)
    }

    fn engine_or_err(&self, name: &str) -> Result<&SessionEngine> {
        self.engines.iter().find(|e| e.name == name).ok_or_else(|| {
            PassError::InvalidParameter("engine", format!("no engine named `{name}`"))
        })
    }

    /// Answer one query on a named engine.
    pub fn estimate(&self, engine: &str, query: &Query) -> Result<Estimate> {
        self.engine_or_err(engine)?.synopsis.estimate(query)
    }

    /// Answer a query batch on a named engine through its batched path
    /// (PASS reuses its tree-traversal buffers across the whole batch).
    pub fn estimate_many(&self, engine: &str, queries: &[Query]) -> Result<Vec<Result<Estimate>>> {
        Ok(self.engine_or_err(engine)?.synopsis.estimate_many(queries))
    }

    /// Exact answer (`None` for AVG/MIN/MAX over empty selections),
    /// computed by the session's shared ground-truth oracle.
    pub fn ground_truth(&self, query: &Query) -> Option<f64> {
        self.truth_oracle().eval(query)
    }

    /// Evaluate one engine over a workload. Ground truth is computed once
    /// per session and shared across engines and calls.
    pub fn run_workload(
        &self,
        engine: &str,
        queries: &[Query],
    ) -> Result<(WorkloadSummary, Vec<QueryOutcome>)> {
        let entry = self.engine_or_err(engine)?;
        let truth = self.truth_oracle();
        let truths: Vec<Option<f64>> = queries.iter().map(|q| truth.eval(q)).collect();
        let (mut summary, outcomes) = run_workload(&entry.synopsis, queries, truth, Some(&truths));
        summary.engine = entry.name.clone();
        summary.build_ms = entry.build_ms;
        Ok((summary, outcomes))
    }

    /// Evaluate **every** registered engine over one workload, reusing a
    /// single ground-truth pass — one row per engine, in insertion order.
    pub fn run_workload_all(&self, queries: &[Query]) -> Vec<WorkloadSummary> {
        let truth = self.truth_oracle();
        let truths: Vec<Option<f64>> = queries.iter().map(|q| truth.eval(q)).collect();
        self.engines
            .iter()
            .map(|entry| {
                let (mut summary, _) = run_workload(&entry.synopsis, queries, truth, Some(&truths));
                summary.engine = entry.name.clone();
                summary.build_ms = entry.build_ms;
                summary
            })
            .collect()
    }

    fn truth_oracle(&self) -> &Truth {
        self.truth.get_or_init(|| Truth::new(&self.table))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::{AggKind, PassSpec};
    use pass_table::datasets::uniform;
    use pass_table::SortedTable;
    use pass_workload::random_queries;

    fn spec_pass(seed: u64) -> EngineSpec {
        EngineSpec::Pass(PassSpec {
            partitions: 16,
            sample_rate: 0.02,
            seed,
            ..PassSpec::default()
        })
    }

    #[test]
    fn engines_are_named_and_replaceable() {
        let mut s = Session::new(uniform(2_000, 1));
        s.add_engine("pass", &spec_pass(2)).unwrap();
        s.add_engine("us", &EngineSpec::uniform(200)).unwrap();
        assert_eq!(s.engine_names(), vec!["pass", "us"]);
        assert_eq!(s.spec("us"), Some(EngineSpec::uniform(200)));
        // Replacing keeps the position and updates the spec.
        s.add_engine("us", &EngineSpec::uniform(300)).unwrap();
        assert_eq!(s.engine_names(), vec!["pass", "us"]);
        assert_eq!(s.spec("us"), Some(EngineSpec::uniform(300)));
        assert!(s.build_ms("pass").unwrap() >= 0.0);
    }

    #[test]
    fn unknown_engine_is_an_error() {
        let s = Session::new(uniform(1_000, 3));
        let q = Query::interval(AggKind::Sum, 0.0, 1.0);
        assert!(s.estimate("nope", &q).is_err());
        assert!(s.estimate_many("nope", std::slice::from_ref(&q)).is_err());
        assert!(s.run_workload("nope", &[q]).is_err());
    }

    #[test]
    fn estimate_and_batch_agree_through_the_facade() {
        let mut s = Session::new(uniform(10_000, 4));
        s.add_engine("pass", &spec_pass(5)).unwrap();
        let queries: Vec<Query> = (0..16)
            .map(|i| Query::interval(AggKind::Sum, i as f64 / 20.0, i as f64 / 20.0 + 0.3))
            .collect();
        let batch = s.estimate_many("pass", &queries).unwrap();
        for (q, b) in queries.iter().zip(batch) {
            assert_eq!(s.estimate("pass", q).unwrap().value, b.unwrap().value);
        }
    }

    #[test]
    fn workloads_share_ground_truth_across_engines() {
        let table = uniform(10_000, 6);
        let sorted = SortedTable::from_table(&table, 0);
        let queries = random_queries(&sorted, 40, AggKind::Sum, 300, 7);
        let session = Session::with_engines(
            table,
            &[
                ("pass", spec_pass(8)),
                ("us", EngineSpec::uniform(400).with_seed(8)),
            ],
        )
        .unwrap();
        let rows = session.run_workload_all(&queries);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].engine, "pass");
        assert_eq!(rows[1].engine, "us");
        for row in &rows {
            assert_eq!(row.queries, 40);
            assert!(row.median_relative_error.is_finite());
        }
        // Single-engine evaluation matches the all-engines row.
        let (solo, outcomes) = session.run_workload("pass", &queries).unwrap();
        assert_eq!(solo.median_relative_error, rows[0].median_relative_error);
        assert_eq!(outcomes.len(), 40);
    }

    #[test]
    fn hand_built_synopses_can_join_the_session() {
        use pass_core::Pass;
        let table = uniform(2_000, 9);
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: 8,
                seed: 10,
                ..PassSpec::default()
            },
        )
        .unwrap();
        let mut s = Session::new(table);
        s.add_synopsis("live", Box::new(pass));
        let q = Query::interval(AggKind::Count, 0.0, 1.0);
        assert!(s.estimate("live", &q).unwrap().value > 0.0);
    }
}
