//! The top-level facade: one table, a set of named engines, single,
//! batched, and parallel queries, per-engine result caching, and workload
//! evaluation — the single entry point the examples, integration tests,
//! and benchmarks drive.
//!
//! Concurrency model: a built synopsis is immutable (`Synopsis: Send +
//! Sync`), so the session holds every engine behind an `Arc` and wraps it
//! in a [`CachedSynopsis`]. [`Session::handle`] hands out cheap
//! [`SessionHandle`] clones — an `Arc` bump each — that answer queries
//! concurrently from any thread against the same synopsis and share one
//! bounded query cache per engine.

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use pass_baselines::Engine;
use pass_common::{
    CacheStats, CachedSynopsis, EngineSpec, Estimate, GroupByQuery, GroupBySnapshot, GroupResult,
    PassError, Query, Result, ShardPlan, Synopsis, ThreadPool,
};
use pass_table::Table;
use pass_workload::{
    run_workload, run_workload_batched, run_workload_parallel, QueryOutcome, Truth, WorkloadSummary,
};

/// Cache entries per engine unless overridden with
/// [`Session::with_cache_capacity`].
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

struct SessionEngine {
    name: String,
    engine: CachedSynopsis<Arc<dyn Synopsis>>,
    build_ms: f64,
}

/// A query session over one table and any number of named engines.
///
/// Engines are added declaratively via [`EngineSpec`]; the session owns
/// the built synopses (shared, immutable, behind `Arc`), answers single
/// ([`estimate`](Session::estimate)), batched
/// ([`estimate_many`](Session::estimate_many)), and parallel
/// ([`estimate_many_parallel`](Session::estimate_many_parallel)) queries,
/// caches repeated query results per engine, and evaluates whole
/// workloads with ground truth computed once and shared across engines.
///
/// ```
/// use pass::{EngineSpec, Session};
/// use pass::common::{AggKind, Query};
/// use pass::table::datasets::uniform;
///
/// let mut session = Session::new(uniform(10_000, 42));
/// session.add_engine("pass", &EngineSpec::pass()).unwrap();
/// session.add_engine("us", &EngineSpec::uniform(500)).unwrap();
/// let q = Query::interval(AggKind::Sum, 0.2, 0.7);
/// let est = session.estimate("pass", &q).unwrap();
/// assert!(est.value > 0.0);
/// ```
///
/// Batched-parallel serving: shard a query batch across a worker pool,
/// and fan [`SessionHandle`] clones out to threads — all against one
/// immutable synopsis, with one shared cache per engine:
///
/// ```
/// use pass::{EngineSpec, Session, ThreadPool};
/// use pass::common::{AggKind, Query};
/// use pass::table::datasets::uniform;
///
/// let mut session = Session::new(uniform(10_000, 7));
/// session.add_engine("pass", &EngineSpec::pass()).unwrap();
/// let queries: Vec<Query> = (0..64)
///     .map(|i| Query::interval(AggKind::Sum, i as f64 / 80.0, i as f64 / 80.0 + 0.2))
///     .collect();
///
/// // Parallel batch: element-wise identical to the sequential path.
/// let pool = ThreadPool::new(2);
/// let parallel = session.estimate_many_parallel("pass", &queries, &pool).unwrap();
/// let sequential = session.estimate_many("pass", &queries).unwrap();
/// for (p, s) in parallel.iter().zip(&sequential) {
///     assert_eq!(p.as_ref().unwrap().value, s.as_ref().unwrap().value);
/// }
///
/// // Concurrent sessions: cheap handles answer from worker threads.
/// let handle = session.handle("pass").unwrap();
/// std::thread::scope(|scope| {
///     for chunk in queries.chunks(16) {
///         let worker = handle.clone();
///         scope.spawn(move || worker.estimate_many(chunk));
///     }
/// });
/// assert!(handle.cache_stats().hits > 0); // repeated queries were cached
/// ```
pub struct Session {
    table: Table,
    truth: OnceLock<Truth>,
    engines: Vec<SessionEngine>,
    cache_capacity: usize,
}

impl Session {
    /// Start a session over a table with no engines yet.
    pub fn new(table: Table) -> Self {
        Session {
            table,
            truth: OnceLock::new(),
            engines: Vec::new(),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
        }
    }

    /// Set the per-engine query-cache capacity (entries) for engines added
    /// *after* this call. `Session::new(t).with_cache_capacity(64)` style.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Start a session and build a set of named engines in one step.
    pub fn with_engines(table: Table, engines: &[(&str, EngineSpec)]) -> Result<Self> {
        let mut session = Session::new(table);
        for (name, spec) in engines {
            session.add_engine(*name, spec)?;
        }
        Ok(session)
    }

    /// Build the engine `spec` describes and register it under `name`.
    /// Re-using a name replaces the previous engine (rebuild-in-place).
    pub fn add_engine(&mut self, name: impl Into<String>, spec: &EngineSpec) -> Result<&mut Self> {
        let name = name.into();
        let start = Instant::now();
        let synopsis = Engine::build(&self.table, spec)?;
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        let capacity = self.cache_capacity;
        self.insert(SessionEngine {
            name,
            engine: CachedSynopsis::new(synopsis, capacity),
            build_ms,
        });
        Ok(self)
    }

    /// Build `inner` sharded across the table according to `plan` and
    /// register it under `name` — shorthand for
    /// [`add_engine`](Self::add_engine) with an [`EngineSpec::Sharded`]
    /// spec. The sharded engine gets the same caching, [`SessionHandle`]s,
    /// and workload plumbing as every other engine; shard builds run
    /// concurrently on a machine-sized pool.
    ///
    /// ```
    /// use pass::{EngineSpec, Session, ShardPlan};
    /// use pass::common::{AggKind, Query};
    /// use pass::table::datasets::uniform;
    ///
    /// let mut session = Session::new(uniform(20_000, 1));
    /// session
    ///     .add_sharded_engine("us4", &EngineSpec::uniform(400), &ShardPlan::row_range(4))
    ///     .unwrap();
    /// let est = session
    ///     .estimate("us4", &Query::interval(AggKind::Sum, 0.2, 0.8))
    ///     .unwrap();
    /// assert!(est.value > 0.0);
    /// ```
    pub fn add_sharded_engine(
        &mut self,
        name: impl Into<String>,
        inner: &EngineSpec,
        plan: &ShardPlan,
    ) -> Result<&mut Self> {
        self.add_engine(name, &EngineSpec::sharded(inner.clone(), plan.clone()))
    }

    /// Serialize the named engine into a portable snapshot
    /// (`pass_common::snapshot` format: spec header + checksummed state
    /// sections). The bytes reconstruct the engine — answers, storage
    /// accounting, and update epoch bit-identical — through
    /// [`load_engine`](Self::load_engine) or `pass_baselines::Engine::load`,
    /// here or in another process.
    ///
    /// ```
    /// use pass::{EngineSpec, Session};
    /// use pass::common::{AggKind, Query};
    /// use pass::table::datasets::uniform;
    ///
    /// let mut session = Session::new(uniform(5_000, 11));
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// let mut bytes = Vec::new();
    /// session.save_engine("pass", &mut bytes).unwrap();
    ///
    /// let mut other = Session::new(uniform(5_000, 11));
    /// other.load_engine("warm", &bytes).unwrap();
    /// let q = Query::interval(AggKind::Sum, 0.2, 0.7);
    /// assert_eq!(
    ///     other.estimate("warm", &q).unwrap(),
    ///     session.estimate("pass", &q).unwrap(),
    /// );
    /// ```
    pub fn save_engine(&self, engine: &str, out: &mut Vec<u8>) -> Result<()> {
        self.engine_or_err(engine)?.engine.inner().save(out)
    }

    /// Reconstruct an engine from snapshot bytes ([`save_engine`](Self::save_engine))
    /// and register it under `name` — the load-side mirror of
    /// [`add_engine`](Self::add_engine): the loaded engine gets the same
    /// cache, [`SessionHandle`], and serving plumbing as a freshly built
    /// one, `build_ms` reports the load time, and a carried-over
    /// [`Synopsis::update_epoch`] keeps epoch-aware caches honest.
    /// Re-using a name replaces the previous engine.
    pub fn load_engine(&mut self, name: impl Into<String>, bytes: &[u8]) -> Result<&mut Self> {
        let name = name.into();
        let start = Instant::now();
        let synopsis = Engine::load(bytes)?;
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        let capacity = self.cache_capacity;
        self.insert(SessionEngine {
            name,
            engine: CachedSynopsis::new(synopsis, capacity),
            build_ms,
        });
        Ok(self)
    }

    /// Register an already-built synopsis (escape hatch for hand-built or
    /// externally updated engines, e.g. a `Pass` absorbing a live stream).
    pub fn add_synopsis(
        &mut self,
        name: impl Into<String>,
        synopsis: impl Synopsis + 'static,
    ) -> &mut Self {
        let capacity = self.cache_capacity;
        self.insert(SessionEngine {
            name: name.into(),
            engine: CachedSynopsis::new(Arc::new(synopsis), capacity),
            build_ms: 0.0,
        });
        self
    }

    /// Insert-or-replace by name, preserving insertion order.
    fn insert(&mut self, engine: SessionEngine) {
        match self.engines.iter_mut().find(|e| e.name == engine.name) {
            Some(slot) => *slot = engine,
            None => self.engines.push(engine),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Registered engine names, in insertion order.
    pub fn engine_names(&self) -> Vec<&str> {
        self.engines.iter().map(|e| e.name.as_str()).collect()
    }

    /// Look up an engine by name (the raw synopsis, bypassing the cache).
    pub fn engine(&self, name: &str) -> Option<&dyn Synopsis> {
        self.engines
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.engine.inner().as_ref())
    }

    /// The spec an engine was built from.
    pub fn spec(&self, name: &str) -> Option<EngineSpec> {
        self.engine(name).map(|e| e.spec())
    }

    /// Milliseconds spent building an engine.
    pub fn build_ms(&self, name: &str) -> Option<f64> {
        self.engines
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.build_ms)
    }

    /// Cumulative query-cache counters for an engine.
    pub fn cache_stats(&self, name: &str) -> Option<CacheStats> {
        self.engines
            .iter()
            .find(|e| e.name == name)
            .map(|e| e.engine.cache().stats())
    }

    /// Drop every cached answer for `engine` (counters are kept — they are
    /// cumulative). Rarely needed: engines that mutate (a streaming
    /// `Pass`) advance their [`Synopsis::update_epoch`] on every
    /// insert/delete and the per-engine cache drops stale entries
    /// automatically on the next lookup. This manual hook remains for
    /// hand-registered synopses that mutate *without* reporting an epoch;
    /// re-registering via [`add_engine`](Self::add_engine) replaces the
    /// cache wholesale.
    pub fn clear_cache(&self, engine: &str) -> Result<()> {
        self.engine_or_err(engine)?.engine.cache().clear();
        Ok(())
    }

    /// Start an async-style serving front-end ([`crate::Serve`]) over
    /// `engine`: a bounded request queue with admission control
    /// (rejection at capacity, per-request deadlines, interactive/bulk
    /// priorities) feeding dedicated workers that execute against this
    /// session's shared synopsis and cache. Served answers are
    /// bit-identical to calling [`estimate`](Session::estimate) here
    /// directly, and the server stays valid even if the session drops.
    ///
    /// ```
    /// use pass::{EngineSpec, ServeConfig, Session};
    /// use pass::common::{AggKind, Query};
    /// use pass::table::datasets::uniform;
    ///
    /// let mut session = Session::new(uniform(5_000, 3));
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// let serve = session.serve("pass", ServeConfig::new()).unwrap();
    /// let ticket = serve.submit(&Query::interval(AggKind::Count, 0.1, 0.8));
    /// let results = ticket.wait().results().unwrap();
    /// assert!(results[0].as_ref().unwrap().value > 0.0);
    /// ```
    pub fn serve(&self, engine: &str, config: crate::ServeConfig) -> Result<crate::Serve> {
        Ok(crate::Serve::new(self.handle(engine)?, config))
    }

    /// Start a **routed** serving front-end over several of this
    /// session's engines: one bounded queue, one worker pool, and one
    /// set of admission-control books shared by all of them. The first
    /// name is the *default* engine — the route-less
    /// [`Serve::submit`](crate::Serve::submit) family targets it, so a
    /// multi-engine server is a drop-in replacement for a single-engine
    /// one — and the rest are reachable by name through
    /// [`Serve::submit_to`](crate::Serve::submit_to) and friends.
    /// Batches coalesce per engine (never mixed), and per-engine
    /// counters come back in
    /// [`ServeStats::per_engine`](crate::ServeStats::per_engine).
    /// Errors on an empty list, an unknown engine name, or a duplicate.
    ///
    /// ```
    /// use pass::{EngineSpec, ServeConfig, Session};
    /// use pass::common::{AggKind, Query};
    /// use pass::table::datasets::uniform;
    ///
    /// let mut session = Session::new(uniform(5_000, 9));
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// session.add_engine("us", &EngineSpec::uniform(500)).unwrap();
    /// let serve = session
    ///     .serve_multi(&["pass", "us"], ServeConfig::new())
    ///     .unwrap();
    ///
    /// let q = Query::interval(AggKind::Count, 0.1, 0.8);
    /// let default_route = serve.submit(&q);            // → "pass"
    /// let routed = serve.submit_to("us", &q).unwrap(); // → "us"
    /// assert!(default_route.wait().is_done());
    /// assert!(routed.wait().is_done());
    /// ```
    pub fn serve_multi(
        &self,
        engines: &[&str],
        config: crate::ServeConfig,
    ) -> Result<crate::Serve> {
        let handles = engines
            .iter()
            .map(|name| self.handle(name))
            .collect::<Result<Vec<_>>>()?;
        crate::Serve::new_multi(handles, config)
    }

    /// A cheap cloneable handle answering queries against `engine` from
    /// any thread: it shares the session's immutable synopsis and query
    /// cache via `Arc`, so clones cost a reference-count bump and hits
    /// accumulate in one place. Handles stay valid (and keep the synopsis
    /// alive) even after the session drops or replaces the engine.
    pub fn handle(&self, engine: &str) -> Result<SessionHandle> {
        let entry = self.engine_or_err(engine)?;
        Ok(SessionHandle {
            name: Arc::from(entry.name.as_str()),
            engine: entry.engine.clone(),
        })
    }

    fn engine_or_err(&self, name: &str) -> Result<&SessionEngine> {
        self.engines.iter().find(|e| e.name == name).ok_or_else(|| {
            PassError::InvalidParameter("engine", format!("no engine named `{name}`"))
        })
    }

    /// Answer one query on a named engine (cache-first).
    pub fn estimate(&self, engine: &str, query: &Query) -> Result<Estimate> {
        self.engine_or_err(engine)?.engine.estimate(query)
    }

    /// Answer a query batch on a named engine through its batched path
    /// (PASS reuses its tree-traversal buffers across the whole batch);
    /// cached results are reused and only misses reach the engine.
    pub fn estimate_many(&self, engine: &str, queries: &[Query]) -> Result<Vec<Result<Estimate>>> {
        Ok(self.engine_or_err(engine)?.engine.estimate_many(queries))
    }

    /// Answer a query batch sharded across `pool`'s worker threads;
    /// element-wise identical to [`estimate_many`](Session::estimate_many).
    pub fn estimate_many_parallel(
        &self,
        engine: &str,
        queries: &[Query],
        pool: &ThreadPool,
    ) -> Result<Vec<Result<Estimate>>> {
        Ok(self
            .engine_or_err(engine)?
            .engine
            .estimate_many_parallel(queries, pool))
    }

    /// Answer a group-by query on a named engine: one
    /// [`GroupResult`] per category, in input order, with the group
    /// availability rule applied per row (a category no shard or sample
    /// can vouch for comes back as an `Err` row, never a silent zero).
    /// Per-category answers are cached under group-tagged keys, so
    /// repeats and overlapping category lists hit the cache.
    ///
    /// ```
    /// use pass::{EngineSpec, Session};
    /// use pass::common::{AggKind, GroupByQuery, Rect};
    /// use pass::table::Table;
    ///
    /// let cat: Vec<f64> = (0..4_000).map(|i| (i % 4) as f64).collect();
    /// let vals: Vec<f64> = (0..4_000).map(|i| ((i % 4) + 1) as f64).collect();
    /// let mut session = Session::new(Table::one_dim(cat, vals).unwrap());
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// let q = GroupByQuery::over(AggKind::Sum, 0, &[0.0, 1.0, 2.0, 3.0], 1);
    /// let rows = session.group_by("pass", &q).unwrap();
    /// assert_eq!(rows.len(), 4);
    /// assert!(rows.iter().all(|r| r.estimate.is_ok()));
    /// ```
    pub fn group_by(&self, engine: &str, query: &GroupByQuery) -> Result<Vec<GroupResult>> {
        self.engine_or_err(engine)?.engine.estimate_group_by(query)
    }

    /// Answer a group-by with the category list sharded across `pool`'s
    /// worker threads. Row-wise identical to [`group_by`](Self::group_by):
    /// every category is an independent per-group query, so chunking the
    /// list cannot change any row's answer.
    pub fn group_by_parallel(
        &self,
        engine: &str,
        query: &GroupByQuery,
        pool: &ThreadPool,
    ) -> Result<Vec<GroupResult>> {
        let entry = self.engine_or_err(engine)?;
        query.validate(entry.engine.dims())?;
        let chunk = pool.chunk_size_for(query.len());
        let parts: Vec<Result<Vec<GroupResult>>> = pool.map_chunks(query.len(), chunk, |range| {
            let reduced = GroupByQuery::new(
                query.agg,
                query.dim,
                &query.categories[range],
                query.base.clone(),
            );
            vec![entry.engine.estimate_group_by(&reduced)]
        });
        let mut rows = Vec::with_capacity(query.len());
        for part in parts {
            rows.extend(part?);
        }
        Ok(rows)
    }

    /// Exact answer (`None` for AVG/MIN/MAX over empty selections),
    /// computed by the session's shared ground-truth oracle.
    pub fn ground_truth(&self, query: &Query) -> Option<f64> {
        self.truth_oracle().eval(query)
    }

    /// Evaluate one engine over a workload, query by query. Ground truth
    /// is computed once per session and shared across engines and calls;
    /// the engine's cache serves repeats, and the summary reports the
    /// hits/misses attributable to this run.
    pub fn run_workload(
        &self,
        engine: &str,
        queries: &[Query],
    ) -> Result<(WorkloadSummary, Vec<QueryOutcome>)> {
        self.run_workload_with(engine, queries, |entry, truths, truth| {
            run_workload(&entry.engine, queries, truth, Some(truths))
        })
    }

    /// Evaluate one engine over a workload through the **batched** query
    /// path ([`Synopsis::estimate_many`]).
    pub fn run_workload_batched(
        &self,
        engine: &str,
        queries: &[Query],
    ) -> Result<(WorkloadSummary, Vec<QueryOutcome>)> {
        self.run_workload_with(engine, queries, |entry, truths, truth| {
            run_workload_batched(&entry.engine, queries, truth, Some(truths))
        })
    }

    /// Evaluate one engine over a workload with the batch sharded across
    /// `pool`'s workers ([`Synopsis::estimate_many_parallel`]). Error
    /// metrics are element-wise identical to the sequential runners; the
    /// summary's latency/throughput columns reflect the parallel wall
    /// clock.
    pub fn run_workload_parallel(
        &self,
        engine: &str,
        queries: &[Query],
        pool: &ThreadPool,
    ) -> Result<(WorkloadSummary, Vec<QueryOutcome>)> {
        self.run_workload_with(engine, queries, |entry, truths, truth| {
            run_workload_parallel(&entry.engine, queries, truth, Some(truths), pool)
        })
    }

    fn run_workload_with(
        &self,
        engine: &str,
        queries: &[Query],
        run: impl FnOnce(&SessionEngine, &[Option<f64>], &Truth) -> (WorkloadSummary, Vec<QueryOutcome>),
    ) -> Result<(WorkloadSummary, Vec<QueryOutcome>)> {
        let entry = self.engine_or_err(engine)?;
        let truth = self.truth_oracle();
        let truths: Vec<Option<f64>> = queries.iter().map(|q| truth.eval(q)).collect();
        let (summary, outcomes) = Self::run_attributed(entry, |entry| run(entry, &truths, truth));
        Ok((summary, outcomes))
    }

    /// Run a workload against one engine, attributing the run's cache
    /// hits/misses and the engine's identity/build time to the summary.
    fn run_attributed<T>(
        entry: &SessionEngine,
        run: impl FnOnce(&SessionEngine) -> (WorkloadSummary, T),
    ) -> (WorkloadSummary, T) {
        let before = entry.engine.cache().stats();
        let (mut summary, extra) = run(entry);
        let delta = entry.engine.cache().stats().since(&before);
        summary.engine = entry.name.clone();
        summary.build_ms = entry.build_ms;
        summary.cache_hits = delta.hits;
        summary.cache_misses = delta.misses;
        (summary, extra)
    }

    /// Evaluate **every** registered engine over one workload, reusing a
    /// single ground-truth pass — one row per engine, in insertion order.
    pub fn run_workload_all(&self, queries: &[Query]) -> Vec<WorkloadSummary> {
        let truth = self.truth_oracle();
        let truths: Vec<Option<f64>> = queries.iter().map(|q| truth.eval(q)).collect();
        self.engines
            .iter()
            .map(|entry| {
                Self::run_attributed(entry, |entry| {
                    run_workload(&entry.engine, queries, truth, Some(&truths))
                })
                .0
            })
            .collect()
    }

    fn truth_oracle(&self) -> &Truth {
        self.truth.get_or_init(|| Truth::new(&self.table))
    }
}

/// A cloneable, thread-safe view of one session engine: the shared
/// immutable synopsis plus the engine's shared query cache.
///
/// Create one with [`Session::handle`]; clone it freely and move the
/// clones into worker threads — every clone answers against the same
/// synopsis and feeds the same hit/miss counters.
#[derive(Clone)]
pub struct SessionHandle {
    name: Arc<str>,
    engine: CachedSynopsis<Arc<dyn Synopsis>>,
}

impl SessionHandle {
    /// The engine name this handle serves.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The raw synopsis (bypassing the cache).
    pub fn synopsis(&self) -> &dyn Synopsis {
        self.engine.inner().as_ref()
    }

    /// Answer one query (cache-first).
    pub fn estimate(&self, query: &Query) -> Result<Estimate> {
        self.engine.estimate(query)
    }

    /// Answer a batch through the engine's batched path; only cache
    /// misses reach the engine.
    pub fn estimate_many(&self, queries: &[Query]) -> Vec<Result<Estimate>> {
        self.engine.estimate_many(queries)
    }

    /// Answer a batch sharded across `pool`'s workers.
    pub fn estimate_many_parallel(
        &self,
        queries: &[Query],
        pool: &ThreadPool,
    ) -> Vec<Result<Estimate>> {
        self.engine.estimate_many_parallel(queries, pool)
    }

    /// Answer a group-by query (per-category answers cache-first). See
    /// [`Session::group_by`].
    pub fn group_by(&self, query: &GroupByQuery) -> Result<Vec<GroupResult>> {
        self.engine.estimate_group_by(query)
    }

    /// Answer a group-by **progressively**: `publish` receives a stream
    /// of refining [`GroupBySnapshot`]s (sharded engines emit one per
    /// merged shard; single synopses emit the final answer as the only
    /// snapshot) and may return `false` to stop early with the best
    /// snapshot so far. Returns the groups of the last snapshot offered.
    /// Progressive answers bypass the query cache — intermediate
    /// extrapolations are never cached, and the final snapshot is
    /// bit-identical to [`group_by`](Self::group_by) by construction.
    pub fn group_by_progressive(
        &self,
        query: &GroupByQuery,
        publish: &mut dyn FnMut(GroupBySnapshot) -> bool,
    ) -> Result<Vec<GroupResult>> {
        self.engine.estimate_group_by_progressive(query, publish)
    }

    /// Cumulative counters of the cache shared by all clones.
    pub fn cache_stats(&self) -> CacheStats {
        self.engine.cache().stats()
    }

    /// Drop every cached answer (shared with the session and all clones;
    /// counters are kept). See [`Session::clear_cache`].
    pub fn clear_cache(&self) {
        self.engine.cache().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pass_common::{AggKind, PassSpec};
    use pass_table::datasets::uniform;
    use pass_table::SortedTable;
    use pass_workload::random_queries;

    fn spec_pass(seed: u64) -> EngineSpec {
        EngineSpec::Pass(PassSpec {
            partitions: 16,
            sample_rate: 0.02,
            seed,
            ..PassSpec::default()
        })
    }

    #[test]
    fn engines_are_named_and_replaceable() {
        let mut s = Session::new(uniform(2_000, 1));
        s.add_engine("pass", &spec_pass(2)).unwrap();
        s.add_engine("us", &EngineSpec::uniform(200)).unwrap();
        assert_eq!(s.engine_names(), vec!["pass", "us"]);
        assert_eq!(s.spec("us"), Some(EngineSpec::uniform(200)));
        // Replacing keeps the position and updates the spec.
        s.add_engine("us", &EngineSpec::uniform(300)).unwrap();
        assert_eq!(s.engine_names(), vec!["pass", "us"]);
        assert_eq!(s.spec("us"), Some(EngineSpec::uniform(300)));
        assert!(s.build_ms("pass").unwrap() >= 0.0);
    }

    #[test]
    fn unknown_engine_is_an_error() {
        let s = Session::new(uniform(1_000, 3));
        let q = Query::interval(AggKind::Sum, 0.0, 1.0);
        assert!(s.estimate("nope", &q).is_err());
        assert!(s.estimate_many("nope", std::slice::from_ref(&q)).is_err());
        assert!(s.run_workload("nope", std::slice::from_ref(&q)).is_err());
        assert!(s.handle("nope").is_err());
        let pool = ThreadPool::new(2);
        assert!(s
            .estimate_many_parallel("nope", std::slice::from_ref(&q), &pool)
            .is_err());
    }

    #[test]
    fn estimate_and_batch_agree_through_the_facade() {
        let mut s = Session::new(uniform(10_000, 4));
        s.add_engine("pass", &spec_pass(5)).unwrap();
        let queries: Vec<Query> = (0..16)
            .map(|i| Query::interval(AggKind::Sum, i as f64 / 20.0, i as f64 / 20.0 + 0.3))
            .collect();
        let batch = s.estimate_many("pass", &queries).unwrap();
        for (q, b) in queries.iter().zip(batch) {
            assert_eq!(s.estimate("pass", q).unwrap().value, b.unwrap().value);
        }
    }

    #[test]
    fn parallel_batch_agrees_with_sequential_through_the_facade() {
        let mut s = Session::new(uniform(10_000, 14));
        s.add_engine("pass", &spec_pass(15)).unwrap();
        let queries: Vec<Query> = (0..128)
            .map(|i| Query::interval(AggKind::Sum, (i % 50) as f64 / 100.0, 0.8))
            .collect();
        let seq = s.estimate_many("pass", &queries).unwrap();
        let pool = ThreadPool::new(4);
        let par = s.estimate_many_parallel("pass", &queries, &pool).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.as_ref().unwrap().value, b.as_ref().unwrap().value);
        }
    }

    #[test]
    fn handles_share_synopsis_and_cache_across_threads() {
        let mut s = Session::new(uniform(10_000, 16));
        s.add_engine("pass", &spec_pass(17)).unwrap();
        let handle = s.handle("pass").unwrap();
        let queries: Vec<Query> = (0..40)
            .map(|i| Query::interval(AggKind::Sum, i as f64 / 50.0, i as f64 / 50.0 + 0.2))
            .collect();
        let expected: Vec<f64> = queries
            .iter()
            .map(|q| s.estimate("pass", q).unwrap().value)
            .collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let worker = handle.clone();
                let queries = &queries;
                let expected = &expected;
                scope.spawn(move || {
                    for (q, want) in queries.iter().zip(expected) {
                        assert_eq!(worker.estimate(q).unwrap().value, *want);
                    }
                });
            }
        });
        // 40 session queries (misses) warmed the cache; all 160 handle
        // queries were hits on the shared cache.
        let stats = handle.cache_stats();
        assert_eq!(stats.hits, 160);
        assert_eq!(stats.misses, 40);
        // The session sees the same counters: one cache per engine.
        assert_eq!(s.cache_stats("pass").unwrap(), stats);
    }

    #[test]
    fn second_workload_pass_is_fully_cached() {
        let table = uniform(10_000, 20);
        let sorted = SortedTable::from_table(&table, 0);
        let queries = random_queries(&sorted, 50, AggKind::Sum, 300, 21);
        let mut s = Session::new(table);
        s.add_engine("pass", &spec_pass(22)).unwrap();
        let (first, _) = s.run_workload("pass", &queries).unwrap();
        assert_eq!(first.cache_hits, 0);
        assert_eq!(first.cache_misses as usize, queries.len());
        let (second, _) = s.run_workload("pass", &queries).unwrap();
        assert_eq!(second.cache_hits as usize, queries.len());
        assert_eq!(second.cache_misses, 0);
        assert_eq!(
            first.median_relative_error, second.median_relative_error,
            "cached answers are identical"
        );
        // throughput_qps counts every answered query, cache-served ones
        // included: the fully cached pass still reports the full query
        // count and a positive serving rate.
        assert_eq!(second.queries, queries.len());
        assert!(second.throughput_qps > 0.0);
    }

    #[test]
    fn clearing_the_cache_forces_recomputation() {
        let mut s = Session::new(uniform(5_000, 23));
        s.add_engine("pass", &spec_pass(24)).unwrap();
        let q = Query::interval(AggKind::Sum, 0.2, 0.8);
        let first = s.estimate("pass", &q).unwrap();
        s.estimate("pass", &q).unwrap();
        assert_eq!(s.cache_stats("pass").unwrap().hits, 1);
        s.clear_cache("pass").unwrap();
        assert_eq!(s.cache_stats("pass").unwrap().len, 0);
        // Recomputed (a miss), deterministic engines answer identically.
        let again = s.estimate("pass", &q).unwrap();
        assert_eq!(first.value, again.value);
        assert_eq!(s.cache_stats("pass").unwrap().hits, 1);
        assert!(s.clear_cache("nope").is_err());
        // The handle shares the same cache and can clear it too.
        let h = s.handle("pass").unwrap();
        h.clear_cache();
        assert_eq!(s.cache_stats("pass").unwrap().len, 0);
    }

    #[test]
    fn workloads_share_ground_truth_across_engines() {
        let table = uniform(10_000, 6);
        let sorted = SortedTable::from_table(&table, 0);
        let queries = random_queries(&sorted, 40, AggKind::Sum, 300, 7);
        let session = Session::with_engines(
            table,
            &[
                ("pass", spec_pass(8)),
                ("us", EngineSpec::uniform(400).with_seed(8)),
            ],
        )
        .unwrap();
        let rows = session.run_workload_all(&queries);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].engine, "pass");
        assert_eq!(rows[1].engine, "us");
        for row in &rows {
            assert_eq!(row.queries, 40);
            assert!(row.median_relative_error.is_finite());
        }
        // Single-engine evaluation matches the all-engines row (answers
        // come from the cache now, but cached answers are identical).
        let (solo, outcomes) = session.run_workload("pass", &queries).unwrap();
        assert_eq!(solo.median_relative_error, rows[0].median_relative_error);
        assert_eq!(outcomes.len(), 40);
        assert_eq!(solo.cache_hits as usize, queries.len());
    }

    #[test]
    fn batched_and_parallel_workload_runners_match_per_query() {
        let table = uniform(10_000, 30);
        let sorted = SortedTable::from_table(&table, 0);
        let queries = random_queries(&sorted, 60, AggKind::Sum, 300, 31);
        // Separate sessions so each runner starts from a cold cache.
        let run = |mode: usize| {
            let mut s = Session::new(uniform(10_000, 30));
            s.add_engine("pass", &spec_pass(32)).unwrap();
            let pool = ThreadPool::new(2);
            match mode {
                0 => s.run_workload("pass", &queries).unwrap().0,
                1 => s.run_workload_batched("pass", &queries).unwrap().0,
                _ => s.run_workload_parallel("pass", &queries, &pool).unwrap().0,
            }
        };
        let per_query = run(0);
        let batched = run(1);
        let parallel = run(2);
        assert_eq!(
            per_query.median_relative_error,
            batched.median_relative_error
        );
        assert_eq!(
            per_query.median_relative_error,
            parallel.median_relative_error
        );
        assert!(batched.throughput_qps > 0.0);
        assert!(parallel.throughput_qps > 0.0);
    }

    #[test]
    fn sharded_engines_get_full_session_plumbing() {
        let table = uniform(10_000, 40);
        let sorted = SortedTable::from_table(&table, 0);
        let queries = random_queries(&sorted, 30, AggKind::Sum, 500, 41);
        let mut s = Session::new(table);
        s.add_sharded_engine("pass4", &spec_pass(42), &ShardPlan::row_range(4))
            .unwrap();
        // Spec round-trips through the session as a Sharded spec.
        assert_eq!(
            s.spec("pass4"),
            Some(EngineSpec::sharded(spec_pass(42), ShardPlan::row_range(4)))
        );
        assert!(s.build_ms("pass4").unwrap() >= 0.0);
        // Caching: a repeated query is a hit.
        let q = &queries[0];
        let first = s.estimate("pass4", q).unwrap();
        assert_eq!(s.estimate("pass4", q).unwrap().value, first.value);
        assert_eq!(s.cache_stats("pass4").unwrap().hits, 1);
        // Handles and workloads work like any other engine.
        let handle = s.handle("pass4").unwrap();
        assert_eq!(handle.estimate(q).unwrap().value, first.value);
        let (summary, outcomes) = s.run_workload("pass4", &queries).unwrap();
        assert_eq!(outcomes.len(), queries.len());
        assert!(summary.median_relative_error < 0.25);
    }

    #[test]
    fn group_by_through_the_facade_is_cached_and_parallel_safe() {
        use pass_common::GroupByQuery;
        let n = 6_000;
        let cat: Vec<f64> = (0..n).map(|i| (i % 6) as f64).collect();
        let vals: Vec<f64> = (0..n).map(|i| ((i % 6) + 1) as f64 * 2.0).collect();
        let table = pass_table::Table::one_dim(cat, vals).unwrap();
        let mut s = Session::new(table);
        s.add_engine("pass", &spec_pass(50)).unwrap();
        let q = GroupByQuery::over(AggKind::Sum, 0, &[0.0, 1.0, 2.0, 3.0, 4.0, 5.0], 1);

        let rows = s.group_by("pass", &q).unwrap();
        assert_eq!(rows.len(), 6);
        let misses = s.cache_stats("pass").unwrap().misses;
        assert_eq!(misses, 6, "one cached row per category");

        // A repeat is answered fully from cache, bit-identically.
        let again = s.group_by("pass", &q).unwrap();
        assert_eq!(rows, again);
        assert_eq!(s.cache_stats("pass").unwrap().misses, misses);

        // The parallel path chunks categories without changing any row.
        let pool = ThreadPool::new(3);
        let par = s.group_by_parallel("pass", &q, &pool).unwrap();
        assert_eq!(rows, par);

        // Handles answer the same rows against the shared cache.
        let handle = s.handle("pass").unwrap();
        assert_eq!(handle.group_by(&q).unwrap(), rows);

        // Progressive: the final snapshot is the non-progressive answer.
        let mut snaps = Vec::new();
        let final_rows = handle
            .group_by_progressive(&q, &mut |snap| {
                snaps.push(snap);
                true
            })
            .unwrap();
        assert_eq!(final_rows, rows);
        assert!(snaps.last().unwrap().last);
        assert_eq!(snaps.last().unwrap().groups, rows);

        // Errors: unknown engine and malformed queries surface as errors.
        assert!(s.group_by("nope", &q).is_err());
        let bad = GroupByQuery::over(AggKind::Sum, 3, &[0.0], 1);
        assert!(s.group_by("pass", &bad).is_err());
        assert!(s.group_by_parallel("pass", &bad, &pool).is_err());
    }

    #[test]
    fn hand_built_synopses_can_join_the_session() {
        use pass_core::Pass;
        let table = uniform(2_000, 9);
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: 8,
                seed: 10,
                ..PassSpec::default()
            },
        )
        .unwrap();
        let mut s = Session::new(table);
        s.add_synopsis("live", pass);
        let q = Query::interval(AggKind::Count, 0.0, 1.0);
        assert!(s.estimate("live", &q).unwrap().value > 0.0);
    }
}
