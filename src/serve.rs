//! An async-style serving front-end with admission control, deadline
//! scheduling, and multi-engine routing over [`SessionHandle`]s.
//!
//! The layers below this one make a single caller fast: batched queries
//! share PASS's tree traversal, parallel batches shard over a
//! [`ThreadPool`], and [`SessionHandle`] clones let many threads query
//! one immutable synopsis. What they do *not* answer is what happens
//! when more requests arrive than the machine can execute — that is a
//! serving-tier problem, and [`Serve`] is the serving tier:
//!
//! * **Submission is decoupled from execution.** [`Serve::submit`] (and
//!   [`submit_batch`](Serve::submit_batch) /
//!   [`submit_with`](Serve::submit_with)) enqueues the request on a
//!   bounded two-priority [`RequestQueue`] and immediately returns a
//!   [`Ticket`] the client polls or blocks on. Dedicated worker threads
//!   drain the queue and execute against shared [`SessionHandle`]s.
//! * **One server can front many engines.**
//!   [`Session::serve_multi`](crate::Session::serve_multi) starts a
//!   routed server over a set of named engines sharing one queue and one
//!   worker pool; [`submit_to`](Serve::submit_to) (and the
//!   [`submit_batch_to`](Serve::submit_batch_to) /
//!   [`submit_with_to`](Serve::submit_with_to) variants) route a request
//!   to an engine by name, while the route-less `submit*` family keeps
//!   targeting the **default** engine (the first one listed), so
//!   single-engine code is unchanged.
//! * **Admission control sheds load instead of queueing it forever.** A
//!   full queue resolves the ticket to [`ServeOutcome::Rejected`]
//!   without blocking the submitter; a request whose deadline passes
//!   while queued resolves to [`ServeOutcome::Expired`] **without
//!   executing**, so a backlogged server stops burning workers on
//!   answers nobody is waiting for.
//! * **Deadlines schedule, not just expire.** Within a priority class,
//!   workers pop the request with the **earliest deadline** first;
//!   undated requests keep FIFO order after every dated one, and equal
//!   deadlines preserve submission order — so deadline-free traffic
//!   behaves exactly as before, and a tight-deadline request overtakes a
//!   lenient one instead of expiring behind it.
//! * **Two priority classes.** [`Priority::Interactive`] requests
//!   always pop before queued [`Priority::Bulk`] requests, so a
//!   latency-sensitive dashboard query overtakes a queued analytics
//!   sweep. EDF ordering applies within a class, never across classes.
//! * **Identical queued requests execute once.** With
//!   [`ServeConfig::with_dedup`], a submission that matches a queued
//!   request bit-exactly (same engine, same queries — the
//!   [`QueryKey`] identity the result cache uses) *attaches* to it
//!   instead of consuming a queue slot: one execution fans its results
//!   out to every attached ticket. [`ServeStats::deduped`] counts the
//!   attachments, globally and per engine.
//! * **Queued requests coalesce into batches.** A worker that pops one
//!   request greedily drains further queued requests of the same class
//!   **and the same engine** (up to [`ServeConfig::coalesce_max`]
//!   queries) and executes them as **one** `estimate_many` batch —
//!   under load, the engine's batched fast path (PASS reuses its MCF
//!   traversal scratch across the batch) kicks in automatically, so
//!   saturation *increases* per-query efficiency. A batch never mixes
//!   engines: the drain stops at the first request routed elsewhere,
//!   which also keeps the deadline schedule intact.
//! * **Group-bys can stream.** [`Serve::submit_progressive`] (and the
//!   routed/option-carrying variants) submits a
//!   [`GroupByQuery`] whose [`ProgressiveTicket`] exposes refining
//!   [`GroupBySnapshot`](pass_common::GroupBySnapshot)s while the
//!   worker merges shards — online aggregation over the serving tier.
//!   Progressive deadlines *stop the refinement* instead of expiring
//!   the request: the ticket resolves to the best estimate so far with
//!   `partial: true`, never [`ProgressiveOutcome::Rejected`]-style
//!   data loss and never `Expired`.
//! * **Everything is observable.** [`Serve::stats`] reports
//!   accepted/rejected/expired/deduped/completed counts, the
//!   queue-depth high-water mark, p50/p99 submit-to-completion latency
//!   from a fixed-bucket [`LatencyHistogram`], and a per-engine
//!   breakdown ([`EngineServeStats`]) for routed servers.
//!
//! Served answers are **bit-identical** to direct
//! [`Session`](crate::Session) calls: the
//! worker executes through the same cached, deterministic synopsis, and
//! `tests/serve_contract.rs` + `tests/route_contract.rs` pin this for
//! the whole `Engine::standard_suite`. The operator-facing guide to
//! every knob and failure mode is `docs/SERVING.md`.
//!
//! There is deliberately no async runtime here — the workspace builds
//! offline and dependency-free, so "async-style" means pollable tickets
//! over parked OS threads (the same idiom as the vendored stubs), not
//! tokio.
//!
//! ```
//! use pass::{EngineSpec, ServeConfig, Session};
//! use pass::common::{AggKind, Query};
//! use pass::table::datasets::uniform;
//!
//! let mut session = Session::new(uniform(10_000, 42));
//! session.add_engine("pass", &EngineSpec::pass()).unwrap();
//!
//! // Spin up the serving front-end over the "pass" engine.
//! let serve = session
//!     .serve("pass", ServeConfig::new().with_workers(2))
//!     .unwrap();
//!
//! // Submissions return immediately; tickets resolve when a worker
//! // executes the request.
//! let q = Query::interval(AggKind::Sum, 0.2, 0.7);
//! let ticket = serve.submit(&q);
//! let batch: Vec<Query> = (0..64)
//!     .map(|i| Query::interval(AggKind::Count, i as f64 / 80.0, 0.9))
//!     .collect();
//! let batch_ticket = serve.submit_batch(&batch);
//!
//! // Served answers are bit-identical to direct session calls.
//! let result = &ticket.wait().results().unwrap()[0];
//! let direct = session.estimate("pass", &q).unwrap();
//! assert_eq!(result.as_ref().unwrap().value, direct.value);
//! assert_eq!(batch_ticket.wait().results().unwrap().len(), 64);
//!
//! let stats = serve.shutdown();
//! assert_eq!(stats.accepted, 2);
//! assert_eq!(stats.completed, 2);
//! assert_eq!(stats.rejected, 0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pass_common::{
    GroupByQuery, LatencyHistogram, PassError, Priority, ProgressiveOutcome, ProgressiveSlot,
    ProgressiveTicket, PushError, Query, QueryKey, RequestQueue, Result, ServeOutcome, ThreadPool,
    Ticket, TicketSlot,
};

use crate::session::SessionHandle;

/// Configuration for a [`Serve`] front-end.
///
/// The defaults describe a reasonable single-machine server: one worker
/// per core, a queue deep enough to absorb bursts (1024 requests), and
/// batches coalesced up to 256 queries — large enough to engage the
/// engines' batched fast paths, small enough to keep queueing delay per
/// batch bounded. `docs/SERVING.md` walks every knob with its failure
/// mode.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dedicated serving worker threads (clamped to ≥ 1). Shared by all
    /// engines of a routed ([`Session::serve_multi`](crate::Session::serve_multi))
    /// server.
    pub workers: usize,
    /// Maximum queued requests before admission control rejects
    /// (clamped to ≥ 1).
    pub queue_depth: usize,
    /// Maximum queries one coalesced execution batch may hold. A single
    /// submission larger than this still executes (as its own batch);
    /// the cap only bounds how much *additional* queued work a worker
    /// glues on.
    pub coalesce_max: usize,
    /// Default deadline applied to submissions that do not carry their
    /// own; `None` means requests wait in the queue indefinitely.
    pub default_deadline: Option<Duration>,
    /// Start with workers parked until [`Serve::resume`] — used by tests
    /// and staged startups to fill the queue deterministically.
    pub start_paused: bool,
    /// Deduplicate identical queued requests: a submission whose engine
    /// and queries match a queued request bit-exactly attaches to it and
    /// shares its single execution instead of consuming a queue slot.
    /// Attachment is bounded (64 submissions per request); a duplicate
    /// storm beyond that starts fresh requests through normal admission
    /// control, so server-held state stays bounded by the queue. Off by
    /// default — dedup changes capacity accounting (attached requests
    /// are admitted even at a full queue) and makes `queue_high_water`
    /// undercount offered load, so it is an explicit opt-in. Answers
    /// are unaffected either way (engines are deterministic).
    pub dedup: bool,
    /// Pool for intra-batch parallelism: each worker executes its
    /// coalesced batch through
    /// [`estimate_many_parallel`](pass_common::Synopsis::estimate_many_parallel)
    /// on this pool. The default single-thread pool makes that exactly
    /// the sequential batched path; give a wider pool to split very
    /// large batches across cores *within* one worker (results stay
    /// bit-identical — the parallel path is pinned to the sequential
    /// one by `tests/parallel_session.rs`).
    pub batch_pool: ThreadPool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: ThreadPool::with_default_parallelism().threads(),
            queue_depth: 1024,
            coalesce_max: 256,
            default_deadline: None,
            start_paused: false,
            dedup: false,
            batch_pool: ThreadPool::new(1),
        }
    }
}

impl ServeConfig {
    /// The default configuration (see the field docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of dedicated worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the admission-control queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Set the per-batch coalescing cap (queries).
    pub fn with_coalesce_max(mut self, max: usize) -> Self {
        self.coalesce_max = max;
        self
    }

    /// Apply `deadline` to every submission that does not set its own.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Start paused; call [`Serve::resume`] to begin draining.
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Answer identical queued requests with one shared execution
    /// (see [`ServeConfig::dedup`]).
    pub fn with_dedup(mut self) -> Self {
        self.dedup = true;
        self
    }

    /// Execute coalesced batches through `pool`
    /// (intra-batch parallelism; see [`ServeConfig::batch_pool`]).
    pub fn with_batch_pool(mut self, pool: ThreadPool) -> Self {
        self.batch_pool = pool;
        self
    }
}

/// Per-request submission options: priority class and optional deadline.
///
/// ```
/// use pass::SubmitOptions;
/// use std::time::Duration;
///
/// let opts = SubmitOptions::bulk().with_deadline(Duration::from_millis(50));
/// ```
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Admission class; interactive requests overtake queued bulk ones.
    pub priority: Priority,
    /// How long the request may wait in the queue before it expires
    /// (measured from submission). `None` falls back to the server's
    /// [`ServeConfig::default_deadline`]. Within a priority class,
    /// earlier deadlines are also *scheduled* first (EDF) — dated
    /// requests pop before undated ones.
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Interactive priority, no per-request deadline.
    pub fn interactive() -> Self {
        Self {
            priority: Priority::Interactive,
            deadline: None,
        }
    }

    /// Bulk priority, no per-request deadline.
    pub fn bulk() -> Self {
        Self {
            priority: Priority::Bulk,
            deadline: None,
        }
    }

    /// Expire the request if it is still queued `deadline` after
    /// submission (and schedule it ahead of later-dated or undated
    /// requests in its class).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl Default for SubmitOptions {
    /// Interactive, no deadline.
    fn default() -> Self {
        Self::interactive()
    }
}

/// One engine's slice of the serving counters in a routed server — see
/// [`ServeStats::per_engine`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineServeStats {
    /// The engine name this row describes.
    pub engine: String,
    /// Submissions routed here and executed to completion.
    pub completed: u64,
    /// Submissions routed here but refused because the queue was at
    /// capacity (the route is known before admission, so shed load is
    /// attributable to the engine whose traffic caused it).
    pub rejected: u64,
    /// Submissions routed here whose deadline passed while queued.
    pub expired: u64,
    /// Submissions answered by attaching to an identical queued request
    /// (one shared execution) instead of executing separately.
    pub deduped: u64,
    /// Execution batches this engine ran.
    pub batches: u64,
}

/// A point-in-time snapshot of the serving front-end's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue (attached duplicates included).
    pub accepted: u64,
    /// Requests refused because the queue was at capacity.
    pub rejected: u64,
    /// Requests whose deadline passed while queued (never executed).
    pub expired: u64,
    /// Requests answered by attaching to an identical queued request —
    /// admitted and completed like any other, but sharing one execution.
    /// Always 0 unless [`ServeConfig::with_dedup`] is set.
    pub deduped: u64,
    /// Requests executed to completion.
    pub completed: u64,
    /// Execution batches run (completed requests per batch > 1 means
    /// coalescing or dedup engaged).
    pub batches: u64,
    /// Deepest the request queue ever got.
    pub queue_high_water: usize,
    /// The admission bound the high-water mark saturates at.
    pub queue_capacity: usize,
    /// Median submit-to-completion latency, microseconds (conservative
    /// fixed-bucket estimate; 0 until something completes).
    pub p50_latency_us: u64,
    /// 99th-percentile submit-to-completion latency, microseconds.
    pub p99_latency_us: u64,
    /// The same counters sliced per engine, in the order the engines
    /// were passed to [`Session::serve_multi`](crate::Session::serve_multi)
    /// (a single-engine server has exactly one row).
    pub per_engine: Vec<EngineServeStats>,
}

/// One submission waiting on a queued request: its ticket slot plus the
/// timing it was submitted with. A request starts with one waiter; dedup
/// attaches more.
struct Waiter {
    slot: TicketSlot,
    submitted: Instant,
    deadline: Option<Instant>,
}

/// The most submissions one queued request will fan out to. Beyond
/// this, an identical submission starts a fresh request that passes
/// through normal admission control — which keeps dedup from turning a
/// duplicate storm into unbounded server-held waiter state (and bounds
/// the per-request result cloning at completion). 64 is generous for
/// the dashboard-fan-in shape dedup exists for; a storm hotter than
/// that *should* start hitting the queue bound.
const MAX_ATTACHED_WAITERS: usize = 64;

/// One queued **progressive** group-by: the query, the slot snapshots
/// and the outcome flow through, and the timing it was submitted with.
/// Deadlines mean something different here than for plain requests: a
/// progressive request always executes, and a deadline that passes
/// mid-stream stops the refinement and resolves to the **best estimate
/// so far** (`Done { partial: true, .. }`) — never `Expired`.
struct ProgressiveJob {
    query: GroupByQuery,
    slot: ProgressiveSlot,
    submitted: Instant,
    deadline: Option<Instant>,
}

/// One queued unit of work: the engine route, the submitted queries,
/// the dedup identity, and every waiter attached to the execution.
/// A progressive group-by rides the same queue (same admission control,
/// same EDF schedule) but executes through its own streaming path:
/// `progressive` is set, `queries`/`waiters` stay empty, and workers
/// never coalesce it into a plain batch.
struct Request {
    engine: usize,
    queries: Vec<Query>,
    /// Bit-exact query identity (only computed when dedup is on).
    key: Option<Vec<QueryKey>>,
    /// Hash of `key`, compared before the full key so the dedup scan
    /// (linear, under the queue lock) rejects non-matches on one `u64`
    /// instead of a per-query `Vec` comparison.
    key_hash: u64,
    waiters: Vec<Waiter>,
    progressive: Option<ProgressiveJob>,
}

/// Per-engine serving state: the session handle workers execute through
/// plus this engine's slice of the counters.
struct EngineState {
    handle: SessionHandle,
    completed: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    deduped: AtomicU64,
    batches: AtomicU64,
}

struct ServeShared {
    engines: Vec<EngineState>,
    queue: RequestQueue<Request>,
    coalesce_max: usize,
    dedup: bool,
    batch_pool: ThreadPool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    deduped: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    /// Completion-order stamp handed to tickets (smaller = finished
    /// earlier).
    completion_seq: AtomicU64,
    latency: LatencyHistogram,
}

impl ServeShared {
    /// One worker's life: pop the most urgent request — highest class,
    /// earliest deadline within it (the queue itself parks the worker
    /// while paused — pause lives under the queue lock, so no request
    /// can slip past it), coalesce compatible queued requests into one
    /// batch, expire the stale, execute the rest, resolve every ticket.
    /// Exits when the queue is closed and drained.
    fn worker_loop(&self) {
        loop {
            let Some((first, class)) = self.queue.pop_blocking() else {
                return;
            };
            // A progressive group-by executes alone: it streams
            // snapshots for as long as its deadline allows, so gluing
            // plain requests behind it would stall them, and gluing it
            // onto a plain batch is shape-impossible (it has no
            // `queries`).
            if first.progressive.is_some() {
                self.execute_progressive(first);
                continue;
            }
            let engine = first.engine;
            let mut total = first.queries.len();
            let mut requests = vec![first];
            // Greedy coalescing, atomically under one queue lock: glue
            // on queued requests of the same class AND the same engine
            // while they fit the batch budget. The queue refuses a bulk
            // drain while interactive work is queued, and the drain
            // stops at the first head routed to a different engine — a
            // batch never mixes engines, and refusing (rather than
            // skipping) the foreign head keeps the EDF schedule intact.
            if total < self.coalesce_max {
                requests.extend(self.queue.drain_class_where(class, |r| {
                    if r.progressive.is_none()
                        && r.engine == engine
                        && total + r.queries.len() <= self.coalesce_max
                    {
                        total += r.queries.len();
                        true
                    } else {
                        false
                    }
                }));
            }
            self.execute(engine, requests);
        }
    }

    /// Expire what is stale (waiter by waiter — attached duplicates
    /// carry their own deadlines), run the rest as one engine batch,
    /// fan each request's results out to every surviving waiter.
    fn execute(&self, engine: usize, requests: Vec<Request>) {
        let state = &self.engines[engine];
        let now = Instant::now();
        let mut live: Vec<Request> = Vec::with_capacity(requests.len());
        for mut req in requests {
            // Fail fast: a waiter whose deadline passed while queued
            // costs zero execution time. A request only executes if at
            // least one waiter is still live — and an expired request
            // popping first (EDF sorts it first) never blocks a live
            // later one, because expiry resolves without executing.
            let (stale, alive): (Vec<Waiter>, Vec<Waiter>) = req
                .waiters
                .into_iter()
                .partition(|w| matches!(w.deadline, Some(d) if d <= now));
            for waiter in stale {
                // relaxed: observability counters — monotonic, never
                // synchronize other memory (here and below).
                self.expired.fetch_add(1, Ordering::Relaxed);
                state.expired.fetch_add(1, Ordering::Relaxed);
                waiter.slot.fulfill(ServeOutcome::Expired, None);
            }
            if !alive.is_empty() {
                req.waiters = alive;
                live.push(req);
            }
        }
        if live.is_empty() {
            return;
        }
        let queries: Vec<Query> = live
            .iter()
            .flat_map(|r| r.queries.iter().cloned())
            .collect();
        let results = state
            .handle
            .estimate_many_parallel(&queries, &self.batch_pool);
        // relaxed: observability counters, as above.
        self.batches.fetch_add(1, Ordering::Relaxed);
        state.batches.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(results.len(), queries.len());
        let mut results = results.into_iter();
        for req in live {
            let slice: Vec<_> = results.by_ref().take(req.queries.len()).collect();
            let mut waiters = req.waiters;
            let Some(last) = waiters.pop() else {
                // Unreachable by construction (every request carries at
                // least its own waiter); skipping keeps the results
                // iterator aligned for the rest of the batch.
                continue;
            };
            for waiter in waiters {
                self.fulfill_done(state, waiter, ServeOutcome::Done(slice.clone()));
            }
            self.fulfill_done(state, last, ServeOutcome::Done(slice));
        }
    }

    /// Drive one progressive group-by to resolution: stream refining
    /// snapshots through the ticket's slot, stop refining (but keep the
    /// best answer so far) when the deadline passes mid-stream, and
    /// resolve exactly once. Unlike plain requests there is **no**
    /// expire-without-executing fast path: a progressive request whose
    /// deadline passed while queued still runs long enough to produce
    /// its first snapshot, so the client gets a best-effort estimate
    /// with `partial: true` instead of [`ProgressiveOutcome`] never
    /// carrying data — "a late answer with honest error bars beats no
    /// answer" is the online-aggregation contract.
    fn execute_progressive(&self, req: Request) {
        let state = &self.engines[req.engine];
        let Some(job) = req.progressive else {
            // Unreachable: the worker loop only routes here when the
            // job is present.
            return;
        };
        let mut saw_final = false;
        let result = state
            .handle
            .group_by_progressive(&job.query, &mut |snapshot| {
                saw_final = snapshot.last;
                job.slot.publish(snapshot);
                // Publishing first, then checking the clock, guarantees
                // at least one snapshot exists before a deadline can
                // stop the stream.
                job.deadline.is_none_or(|d| Instant::now() < d)
            });
        // relaxed: observability counters (here and below).
        self.batches.fetch_add(1, Ordering::Relaxed);
        state.batches.fetch_add(1, Ordering::Relaxed);
        let outcome = match result {
            Ok(groups) => ProgressiveOutcome::Done {
                groups,
                partial: !saw_final,
            },
            Err(err) => ProgressiveOutcome::Failed(err),
        };
        let waited_us = job.submitted.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.latency.record(waited_us);
        // relaxed: observability counters.
        self.completed.fetch_add(1, Ordering::Relaxed);
        state.completed.fetch_add(1, Ordering::Relaxed);
        job.slot.try_resolve(outcome);
    }

    /// Resolve one completed waiter: stamp, record latency, count.
    fn fulfill_done(&self, state: &EngineState, waiter: Waiter, outcome: ServeOutcome) {
        // relaxed: the stamp only needs uniqueness + atomicity; clients
        // compare stamps they obtained through their own tickets, whose
        // mutex already orders the handoff.
        let seq = self.completion_seq.fetch_add(1, Ordering::Relaxed);
        let waited_us = waiter.submitted.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.latency.record(waited_us);
        // relaxed: observability counters.
        self.completed.fetch_add(1, Ordering::Relaxed);
        state.completed.fetch_add(1, Ordering::Relaxed);
        waiter.slot.fulfill(outcome, Some(seq));
    }
}

/// The serving front-end: a bounded request queue, admission control,
/// deadline-aware scheduling, and a fixed set of workers executing
/// against one or more [`SessionHandle`]s.
///
/// Create one with [`Session::serve`](crate::Session::serve) (one
/// engine), [`Session::serve_multi`](crate::Session::serve_multi)
/// (routed), or [`Serve::new`] / [`Serve::new_multi`] from raw handles.
/// Submissions never block; execution happens on the server's workers;
/// results come back through [`Ticket`]s. Dropping the server closes
/// the queue, drains every accepted request, and joins the workers —
/// no accepted ticket is left unresolved.
///
/// See the [serve module docs](crate::serve) for the full request
/// lifecycle and `docs/SERVING.md` for the operator's guide.
pub struct Serve {
    shared: Arc<ServeShared>,
    default_deadline: Option<Duration>,
    workers: Vec<JoinHandle<()>>,
}

impl Serve {
    /// Start a serving front-end over one `handle` (workers spawn
    /// immediately; parked first if [`ServeConfig::start_paused`]).
    pub fn new(handle: SessionHandle, config: ServeConfig) -> Self {
        // One handle is trivially a valid route set (non-empty, no
        // duplicate names), so this takes the infallible path directly.
        Self::start(vec![handle], config)
    }

    /// Start a routed serving front-end over several handles sharing
    /// one queue and one worker pool. The first handle is the
    /// **default** engine (the route-less `submit*` family targets it);
    /// the rest are reachable through [`submit_to`](Serve::submit_to)
    /// and friends. Errors on an empty handle set or a duplicated
    /// engine name (routing by name would be ambiguous).
    pub fn new_multi(handles: Vec<SessionHandle>, config: ServeConfig) -> Result<Self> {
        if handles.is_empty() {
            return Err(PassError::InvalidParameter(
                "engines",
                "a server needs at least one engine".into(),
            ));
        }
        for (i, handle) in handles.iter().enumerate() {
            if handles[..i].iter().any(|h| h.name() == handle.name()) {
                return Err(PassError::InvalidParameter(
                    "engines",
                    format!("duplicate engine name `{}`", handle.name()),
                ));
            }
        }
        Ok(Self::start(handles, config))
    }

    /// The one construction path: spin up the shared state and the
    /// worker pool over an already-validated handle set.
    fn start(handles: Vec<SessionHandle>, config: ServeConfig) -> Self {
        let shared = Arc::new(ServeShared {
            engines: handles
                .into_iter()
                .map(|handle| EngineState {
                    handle,
                    completed: AtomicU64::new(0),
                    rejected: AtomicU64::new(0),
                    expired: AtomicU64::new(0),
                    deduped: AtomicU64::new(0),
                    batches: AtomicU64::new(0),
                })
                .collect(),
            queue: RequestQueue::new(config.queue_depth),
            coalesce_max: config.coalesce_max.max(1),
            dedup: config.dedup,
            batch_pool: config.batch_pool,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            deduped: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            completion_seq: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        });
        shared.queue.set_paused(config.start_paused);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        Serve {
            shared,
            default_deadline: config.default_deadline,
            workers,
        }
    }

    /// The default engine name — the one the route-less `submit*`
    /// family executes against.
    pub fn engine(&self) -> &str {
        self.shared.engines[0].handle.name()
    }

    /// Every engine this server routes to, default first.
    pub fn engines(&self) -> Vec<&str> {
        self.shared
            .engines
            .iter()
            .map(|e| e.handle.name())
            .collect()
    }

    fn engine_index(&self, engine: &str) -> Result<usize> {
        self.shared
            .engines
            .iter()
            .position(|e| e.handle.name() == engine)
            .ok_or_else(|| {
                PassError::InvalidParameter("engine", format!("no served engine named `{engine}`"))
            })
    }

    /// Submit one interactive query with no per-request deadline to the
    /// default engine.
    ///
    /// # Examples
    ///
    /// ```
    /// use pass::{EngineSpec, ServeConfig, Session};
    /// use pass::common::{AggKind, Query};
    /// use pass::table::datasets::uniform;
    ///
    /// let mut session = Session::new(uniform(2_000, 1));
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// let serve = session.serve("pass", ServeConfig::new()).unwrap();
    ///
    /// let ticket = serve.submit(&Query::interval(AggKind::Count, 0.1, 0.9));
    /// let results = ticket.wait().results().unwrap();
    /// assert!(results[0].as_ref().unwrap().value > 0.0);
    /// ```
    pub fn submit(&self, query: &Query) -> Ticket {
        self.submit_with(std::slice::from_ref(query), &SubmitOptions::default())
    }

    /// Submit a query batch (interactive, no per-request deadline) to
    /// the default engine. The whole batch is one request: it is
    /// admitted, expired, and resolved as a unit, and its ticket yields
    /// one result per query in order.
    ///
    /// # Examples
    ///
    /// ```
    /// use pass::{EngineSpec, ServeConfig, Session};
    /// use pass::common::{AggKind, Query};
    /// use pass::table::datasets::uniform;
    ///
    /// let mut session = Session::new(uniform(2_000, 2));
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// let serve = session.serve("pass", ServeConfig::new()).unwrap();
    ///
    /// let batch: Vec<Query> = (0..8)
    ///     .map(|i| Query::interval(AggKind::Sum, i as f64 / 10.0, 0.95))
    ///     .collect();
    /// let results = serve.submit_batch(&batch).wait().results().unwrap();
    /// assert_eq!(results.len(), 8); // one result per query, in order
    /// ```
    pub fn submit_batch(&self, queries: &[Query]) -> Ticket {
        self.submit_with(queries, &SubmitOptions::default())
    }

    /// Submit to the default engine with explicit [`SubmitOptions`].
    /// Never blocks: the ticket resolves to [`ServeOutcome::Rejected`]
    /// immediately when the queue is at capacity (that is the
    /// backpressure signal) and to [`ServeOutcome::Cancelled`] when the
    /// server is shutting down. An empty batch resolves to an empty
    /// `Done` without queueing.
    ///
    /// # Examples
    ///
    /// ```
    /// use pass::{EngineSpec, ServeConfig, Session, SubmitOptions};
    /// use pass::common::{AggKind, Query};
    /// use pass::table::datasets::uniform;
    /// use std::time::Duration;
    ///
    /// let mut session = Session::new(uniform(2_000, 3));
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// let serve = session.serve("pass", ServeConfig::new()).unwrap();
    ///
    /// // Bulk priority (yields to interactive traffic) with a deadline:
    /// // scheduled EDF within its class, expired unexecuted if still
    /// // queued after 10 s.
    /// let opts = SubmitOptions::bulk().with_deadline(Duration::from_secs(10));
    /// let ticket = serve.submit_with(&[Query::interval(AggKind::Avg, 0.2, 0.8)], &opts);
    /// assert!(ticket.wait().is_done());
    /// ```
    pub fn submit_with(&self, queries: &[Query], options: &SubmitOptions) -> Ticket {
        self.enqueue(0, queries, options)
    }

    /// Submit one interactive query routed to `engine` by name. Errors
    /// if this server does not front an engine of that name (routes are
    /// fixed at construction — see
    /// [`Session::serve_multi`](crate::Session::serve_multi)).
    ///
    /// # Examples
    ///
    /// ```
    /// use pass::{EngineSpec, ServeConfig, Session};
    /// use pass::common::{AggKind, Query};
    /// use pass::table::datasets::uniform;
    ///
    /// let mut session = Session::new(uniform(2_000, 4));
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// session.add_engine("us", &EngineSpec::uniform(200)).unwrap();
    /// let serve = session.serve_multi(&["pass", "us"], ServeConfig::new()).unwrap();
    ///
    /// let q = Query::interval(AggKind::Count, 0.0, 1.0);
    /// let routed = serve.submit_to("us", &q).unwrap();
    /// assert!(routed.wait().is_done());
    /// assert!(serve.submit_to("nope", &q).is_err());
    /// ```
    pub fn submit_to(&self, engine: &str, query: &Query) -> Result<Ticket> {
        self.submit_with_to(
            engine,
            std::slice::from_ref(query),
            &SubmitOptions::default(),
        )
    }

    /// Submit a query batch routed to `engine` by name (interactive, no
    /// per-request deadline) — the routed variant of
    /// [`submit_batch`](Serve::submit_batch).
    pub fn submit_batch_to(&self, engine: &str, queries: &[Query]) -> Result<Ticket> {
        self.submit_with_to(engine, queries, &SubmitOptions::default())
    }

    /// Submit routed to `engine` with explicit [`SubmitOptions`] — the
    /// routed variant of [`submit_with`](Serve::submit_with). The only
    /// error is an unknown engine name; admission outcomes (rejection,
    /// cancellation) still arrive through the ticket, never as an `Err`.
    pub fn submit_with_to(
        &self,
        engine: &str,
        queries: &[Query],
        options: &SubmitOptions,
    ) -> Result<Ticket> {
        Ok(self.enqueue(self.engine_index(engine)?, queries, options))
    }

    /// Submit a **progressive** group-by (interactive, no per-request
    /// deadline) to the default engine. The returned
    /// [`ProgressiveTicket`] streams refining [`GroupBySnapshot`]s
    /// (one per merged shard on sharded engines; single synopses
    /// publish the exact answer as the only snapshot) while the worker
    /// executes, then resolves to [`ProgressiveOutcome::Done`] with the
    /// last snapshot's groups — online aggregation over the serving
    /// tier.
    ///
    /// # Examples
    ///
    /// ```
    /// use pass::{EngineSpec, ServeConfig, Session};
    /// use pass::common::{AggKind, GroupByQuery};
    /// use pass::table::Table;
    ///
    /// let cat: Vec<f64> = (0..4_000).map(|i| (i % 4) as f64).collect();
    /// let vals: Vec<f64> = (0..4_000).map(|i| ((i % 4) + 1) as f64).collect();
    /// let mut session = Session::new(Table::one_dim(cat, vals).unwrap());
    /// session.add_engine("pass", &EngineSpec::pass()).unwrap();
    /// let serve = session.serve("pass", ServeConfig::new()).unwrap();
    ///
    /// let q = GroupByQuery::over(AggKind::Sum, 0, &[0.0, 1.0, 2.0, 3.0], 1);
    /// let ticket = serve.submit_progressive(&q);
    /// let outcome = ticket.wait();
    /// assert!(outcome.is_done() && !outcome.is_partial());
    /// assert_eq!(outcome.groups().unwrap().len(), 4);
    /// ```
    ///
    /// [`GroupBySnapshot`]: pass_common::GroupBySnapshot
    pub fn submit_progressive(&self, query: &GroupByQuery) -> ProgressiveTicket {
        self.submit_progressive_with(query, &SubmitOptions::default())
    }

    /// Submit a progressive group-by to the default engine with
    /// explicit [`SubmitOptions`]. Deadlines follow the progressive
    /// contract, not the plain one: the request is **never** expired
    /// unexecuted — a deadline that passes (even while queued) stops
    /// the refinement after the next snapshot and resolves to the best
    /// estimate so far with `partial: true`. A full queue still rejects
    /// ([`ProgressiveOutcome::Rejected`]) and a closed server cancels
    /// ([`ProgressiveOutcome::Cancelled`]); an empty category list
    /// resolves to an empty complete `Done` without queueing.
    pub fn submit_progressive_with(
        &self,
        query: &GroupByQuery,
        options: &SubmitOptions,
    ) -> ProgressiveTicket {
        self.enqueue_progressive(0, query, options)
    }

    /// Submit a progressive group-by routed to `engine` by name — the
    /// routed variant of [`submit_progressive`](Serve::submit_progressive).
    /// The only error is an unknown engine name.
    pub fn submit_progressive_to(
        &self,
        engine: &str,
        query: &GroupByQuery,
    ) -> Result<ProgressiveTicket> {
        self.submit_progressive_with_to(engine, query, &SubmitOptions::default())
    }

    /// Submit a progressive group-by routed to `engine` with explicit
    /// [`SubmitOptions`] — the routed variant of
    /// [`submit_progressive_with`](Serve::submit_progressive_with).
    pub fn submit_progressive_with_to(
        &self,
        engine: &str,
        query: &GroupByQuery,
        options: &SubmitOptions,
    ) -> Result<ProgressiveTicket> {
        Ok(self.enqueue_progressive(self.engine_index(engine)?, query, options))
    }

    /// The progressive twin of [`enqueue`](Self::enqueue): same
    /// admission control and EDF scheduling (a dated progressive
    /// request schedules ahead of undated traffic in its class), but
    /// the request carries a [`ProgressiveJob`] instead of waiters and
    /// never participates in dedup or coalescing.
    fn enqueue_progressive(
        &self,
        engine: usize,
        query: &GroupByQuery,
        options: &SubmitOptions,
    ) -> ProgressiveTicket {
        if query.is_empty() {
            return ProgressiveTicket::resolved(ProgressiveOutcome::Done {
                groups: Vec::new(),
                partial: false,
            });
        }
        let submitted = Instant::now();
        let deadline = options
            .deadline
            .or(self.default_deadline)
            .map(|d| submitted + d);
        let (ticket, slot) = ProgressiveTicket::pending();
        let request = Request {
            engine,
            queries: Vec::new(),
            key: None,
            key_hash: 0,
            waiters: Vec::new(),
            progressive: Some(ProgressiveJob {
                query: query.clone(),
                slot,
                submitted,
                deadline,
            }),
        };
        // Claim acceptance before the push for the same
        // completed-never-exceeds-accepted invariant as `enqueue`.
        // relaxed: observability counters (here and below).
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        match self
            .shared
            .queue
            .try_push_scheduled(request, options.priority, deadline)
        {
            Ok(()) => ticket,
            Err((PushError::Full, request)) => {
                self.shared.accepted.fetch_sub(1, Ordering::Relaxed);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                self.shared.engines[engine]
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                Self::resolve_unqueued_progressive(request, ProgressiveOutcome::Rejected);
                ticket
            }
            Err((PushError::Closed, request)) => {
                // relaxed: observability counter.
                self.shared.accepted.fetch_sub(1, Ordering::Relaxed);
                Self::resolve_unqueued_progressive(request, ProgressiveOutcome::Cancelled);
                ticket
            }
        }
    }

    /// Resolve a progressive request the queue refused.
    fn resolve_unqueued_progressive(request: Request, outcome: ProgressiveOutcome) {
        if let Some(job) = request.progressive {
            job.slot.try_resolve(outcome);
        }
    }

    /// The one enqueue path every submission goes through: admission
    /// control, deadline stamping, EDF scheduling, and (when enabled)
    /// dedup attachment.
    fn enqueue(&self, engine: usize, queries: &[Query], options: &SubmitOptions) -> Ticket {
        if queries.is_empty() {
            return Ticket::resolved(ServeOutcome::Done(Vec::new()));
        }
        let submitted = Instant::now();
        let deadline = options
            .deadline
            .or(self.default_deadline)
            .map(|d| submitted + d);
        let (ticket, slot) = Ticket::pending();
        let key: Option<Vec<QueryKey>> = self
            .shared
            .dedup
            .then(|| queries.iter().map(QueryKey::new).collect());
        let key_hash = key.as_ref().map_or(0, |keys| {
            use std::hash::{DefaultHasher, Hash, Hasher};
            let mut hasher = DefaultHasher::new();
            keys.hash(&mut hasher);
            hasher.finish()
        });
        let request = Request {
            engine,
            queries: queries.to_vec(),
            key,
            key_hash,
            waiters: vec![Waiter {
                slot,
                submitted,
                deadline,
            }],
            progressive: None,
        };
        // Count acceptance *before* the push: the instant the request is
        // in the queue a worker may pop, execute, and bump `completed`,
        // and a mid-run stats() observer must never see
        // completed > accepted. Failed pushes undo the claim.
        // relaxed: observability counter; the ordering argument above
        // is about program order on this thread, not memory ordering.
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        let pushed = if self.shared.dedup {
            self.shared.queue.try_push_or_merge(
                request,
                options.priority,
                deadline,
                // Cheap fields first: the scan holds the queue lock, so
                // non-matches must fail on integers, not Vec compares.
                // A request already carrying MAX_ATTACHED_WAITERS
                // refuses further attachments — the duplicate then goes
                // through normal admission control, keeping dedup's
                // memory bounded.
                |queued, new| {
                    queued.progressive.is_none()
                        && queued.engine == new.engine
                        && queued.key_hash == new.key_hash
                        && queued.waiters.len() < MAX_ATTACHED_WAITERS
                        && queued.key == new.key
                },
                |queued, new| queued.waiters.extend(new.waiters),
            )
        } else {
            self.shared
                .queue
                .try_push_scheduled(request, options.priority, deadline)
                .map(|()| false)
        };
        match pushed {
            Ok(attached) => {
                if attached {
                    // relaxed: observability counters (here and in the
                    // rejection arms below).
                    self.shared.deduped.fetch_add(1, Ordering::Relaxed);
                    self.shared.engines[engine]
                        .deduped
                        .fetch_add(1, Ordering::Relaxed);
                }
                ticket
            }
            Err((PushError::Full, request)) => {
                // relaxed: observability counters.
                self.shared.accepted.fetch_sub(1, Ordering::Relaxed);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                self.shared.engines[engine]
                    .rejected
                    .fetch_add(1, Ordering::Relaxed);
                Self::resolve_unqueued(request, ServeOutcome::Rejected);
                ticket
            }
            Err((PushError::Closed, request)) => {
                // relaxed: observability counter.
                self.shared.accepted.fetch_sub(1, Ordering::Relaxed);
                Self::resolve_unqueued(request, ServeOutcome::Cancelled);
                ticket
            }
        }
    }

    /// Resolve every waiter of a request the queue refused (there is
    /// exactly one at submission time, but stay shape-agnostic).
    fn resolve_unqueued(request: Request, outcome: ServeOutcome) {
        for waiter in request.waiters {
            waiter.slot.fulfill(outcome.clone(), None);
        }
    }

    /// Park the workers after their in-flight batches finish; queued and
    /// newly submitted requests wait (admission control still applies).
    /// The pause flag lives under the queue's own lock, so even a worker
    /// already parked inside a pop cannot slip a request past a pause.
    pub fn pause(&self) {
        self.shared.queue.set_paused(true);
    }

    /// Release paused workers.
    pub fn resume(&self) {
        self.shared.queue.set_paused(false);
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// A snapshot of the serving counters, queue high-water mark,
    /// latency percentiles, and the per-engine breakdown.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            // relaxed: advisory snapshot — stats() promises monotonic
            // counters, not a cross-counter-consistent cut.
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            deduped: self.shared.deduped.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            queue_high_water: self.shared.queue.high_water(),
            queue_capacity: self.shared.queue.capacity(),
            p50_latency_us: self.shared.latency.p50(),
            p99_latency_us: self.shared.latency.p99(),
            per_engine: self
                .shared
                .engines
                .iter()
                .map(|e| EngineServeStats {
                    engine: e.handle.name().to_string(),
                    // relaxed: advisory snapshot, as above.
                    completed: e.completed.load(Ordering::Relaxed),
                    rejected: e.rejected.load(Ordering::Relaxed),
                    expired: e.expired.load(Ordering::Relaxed),
                    deduped: e.deduped.load(Ordering::Relaxed),
                    batches: e.batches.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Stop accepting, drain every queued request (deadlines still
    /// apply: stale requests expire rather than execute), join the
    /// workers, and return the final stats. Dropping the server does
    /// the same minus the stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        // Closing wakes paused workers too: a closed queue drains
        // regardless of the pause flag.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Serve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Serve")
            .field("engines", &self.engines())
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use pass_common::{AggKind, EngineSpec};
    use pass_table::datasets::uniform;

    fn served_session() -> Session {
        let mut s = Session::new(uniform(5_000, 77));
        s.add_engine("pass", &EngineSpec::pass()).unwrap();
        s
    }

    fn q(lo: f64, hi: f64) -> Query {
        Query::interval(AggKind::Sum, lo, hi)
    }

    #[test]
    fn single_and_batch_submissions_resolve_with_engine_answers() {
        let session = served_session();
        let serve = session
            .serve("pass", ServeConfig::new().with_workers(2))
            .unwrap();
        assert_eq!(serve.engine(), "pass");
        assert_eq!(serve.engines(), vec!["pass"]);
        let single = serve.submit(&q(0.1, 0.9));
        let batch: Vec<Query> = (0..8).map(|i| q(i as f64 / 10.0, 0.95)).collect();
        let many = serve.submit_batch(&batch);
        let got = single.wait().results().unwrap();
        assert_eq!(
            got[0].as_ref().unwrap().value,
            session.estimate("pass", &q(0.1, 0.9)).unwrap().value
        );
        let got = many.wait().results().unwrap();
        assert_eq!(got.len(), 8);
        for (query, result) in batch.iter().zip(&got) {
            assert_eq!(
                result.as_ref().unwrap().value,
                session.estimate("pass", query).unwrap().value
            );
        }
        let stats = serve.shutdown();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!((stats.rejected, stats.expired, stats.deduped), (0, 0, 0));
        assert!(stats.batches >= 1);
        assert!(stats.p50_latency_us <= stats.p99_latency_us);
        // The single-engine per-engine breakdown is one row matching the
        // global counters.
        assert_eq!(stats.per_engine.len(), 1);
        assert_eq!(stats.per_engine[0].engine, "pass");
        assert_eq!(stats.per_engine[0].completed, stats.completed);
        assert_eq!(stats.per_engine[0].batches, stats.batches);
    }

    #[test]
    fn empty_batch_resolves_immediately() {
        let session = served_session();
        let serve = session.serve("pass", ServeConfig::new()).unwrap();
        let ticket = serve.submit_batch(&[]);
        assert_eq!(ticket.wait(), ServeOutcome::Done(Vec::new()));
        assert_eq!(serve.stats().accepted, 0);
    }

    #[test]
    fn queue_full_rejects_without_blocking() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_queue_depth(2)
                    .paused(),
            )
            .unwrap();
        let accepted: Vec<Ticket> = (0..2).map(|_| serve.submit(&q(0.0, 0.5))).collect();
        let rejected = serve.submit(&q(0.0, 0.6));
        assert_eq!(rejected.poll(), Some(ServeOutcome::Rejected));
        assert_eq!(rejected.completion_index(), None);
        let stats = serve.stats();
        assert_eq!((stats.accepted, stats.rejected), (2, 1));
        assert_eq!(stats.queue_high_water, 2);
        serve.resume();
        for t in accepted {
            assert!(t.wait().is_done());
        }
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let session = served_session();
        let serve = session
            .serve("pass", ServeConfig::new().with_workers(1).paused())
            .unwrap();
        let tickets: Vec<Ticket> = (0..5)
            .map(|i| serve.submit(&q(0.0, 0.5 + i as f64 / 100.0)))
            .collect();
        // Shutdown resumes, drains, joins: every accepted ticket resolves.
        let stats = serve.shutdown();
        for t in tickets {
            assert!(t.wait().is_done());
        }
        assert_eq!(stats.completed, 5);
    }

    #[test]
    fn submissions_after_shutdown_are_cancelled() {
        let session = served_session();
        let serve = session.serve("pass", ServeConfig::new()).unwrap();
        // Close the queue out from under the facade, then submit.
        serve.shared.queue.close();
        let ticket = serve.submit(&q(0.0, 0.5));
        assert_eq!(ticket.wait(), ServeOutcome::Cancelled);
    }

    #[test]
    fn default_deadline_applies_to_queued_requests() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_default_deadline(Duration::ZERO)
                    .paused(),
            )
            .unwrap();
        let doomed = serve.submit(&q(0.0, 0.5));
        serve.resume();
        assert_eq!(doomed.wait(), ServeOutcome::Expired);
        assert_eq!(serve.stats().expired, 1);
        // An explicit generous deadline overrides the default.
        let fine = serve.submit_with(
            &[q(0.0, 0.5)],
            &SubmitOptions::interactive().with_deadline(Duration::from_secs(60)),
        );
        assert!(fine.wait().is_done());
    }

    #[test]
    fn coalescing_executes_queued_requests_in_fewer_batches() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_coalesce_max(64)
                    .paused(),
            )
            .unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| serve.submit(&q(i as f64 / 20.0, 0.9)))
            .collect();
        serve.resume();
        for (i, t) in tickets.iter().enumerate() {
            let got = t.wait().results().unwrap();
            assert_eq!(
                got[0].as_ref().unwrap().value,
                session
                    .estimate("pass", &q(i as f64 / 20.0, 0.9))
                    .unwrap()
                    .value,
                "request {i}"
            );
        }
        let stats = serve.shutdown();
        assert_eq!(stats.completed, 16);
        assert!(
            stats.batches < 16,
            "16 queued requests ran in {} batches — coalescing never engaged",
            stats.batches
        );
    }

    #[test]
    fn pausing_a_running_server_parks_workers_already_waiting_in_the_pop() {
        // Regression: pause() must hold back requests submitted *after*
        // the pause even when a worker is already parked inside the
        // queue's blocking pop (the flag lives under the queue lock).
        let session = served_session();
        let serve = session
            .serve("pass", ServeConfig::new().with_workers(2))
            .unwrap();
        // Let the workers reach pop_blocking on the empty queue.
        assert!(serve.submit(&q(0.0, 0.5)).wait().is_done());
        serve.pause();
        let parked = serve.submit(&q(0.1, 0.6));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(parked.poll(), None, "executed while paused");
        assert_eq!(serve.queue_depth(), 1);
        serve.resume();
        assert!(parked.wait().is_done());
    }

    #[test]
    fn oversized_single_submission_still_executes() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new().with_workers(1).with_coalesce_max(4),
            )
            .unwrap();
        let big: Vec<Query> = (0..32).map(|i| q(i as f64 / 40.0, 0.9)).collect();
        let ticket = serve.submit_batch(&big);
        assert_eq!(ticket.wait().results().unwrap().len(), 32);
    }

    #[test]
    fn wide_batch_pool_stays_bit_identical() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_batch_pool(ThreadPool::new(4)),
            )
            .unwrap();
        let batch: Vec<Query> = (0..128).map(|i| q((i % 40) as f64 / 50.0, 0.9)).collect();
        let got = serve.submit_batch(&batch).wait().results().unwrap();
        for (query, result) in batch.iter().zip(&got) {
            assert_eq!(
                result.as_ref().unwrap().value,
                session.estimate("pass", query).unwrap().value
            );
        }
    }

    #[test]
    fn routing_to_an_unknown_engine_is_an_error_not_a_ticket() {
        let session = served_session();
        let serve = session.serve("pass", ServeConfig::new()).unwrap();
        assert!(serve.submit_to("nope", &q(0.0, 0.5)).is_err());
        assert!(serve.submit_batch_to("nope", &[q(0.0, 0.5)]).is_err());
        assert!(serve
            .submit_with_to("nope", &[q(0.0, 0.5)], &SubmitOptions::bulk())
            .is_err());
        // Nothing was admitted or shed — routing errors happen before
        // admission control.
        let stats = serve.stats();
        assert_eq!((stats.accepted, stats.rejected), (0, 0));
    }

    #[test]
    fn empty_engine_set_and_duplicate_names_are_rejected() {
        let session = served_session();
        assert!(Serve::new_multi(vec![], ServeConfig::new()).is_err());
        let h = session.handle("pass").unwrap();
        assert!(Serve::new_multi(vec![h.clone(), h], ServeConfig::new()).is_err());
    }

    #[test]
    fn dedup_is_off_by_default_and_attaches_when_enabled() {
        let session = served_session();
        // Default: three identical submissions occupy three slots.
        let serve = session
            .serve("pass", ServeConfig::new().with_workers(1).paused())
            .unwrap();
        let tickets: Vec<Ticket> = (0..3).map(|_| serve.submit(&q(0.2, 0.8))).collect();
        assert_eq!(serve.queue_depth(), 3);
        serve.resume();
        for t in tickets {
            assert!(t.wait().is_done());
        }
        assert_eq!(serve.shutdown().deduped, 0);

        // Opt in: duplicates attach to one queued request.
        let serve = session
            .serve(
                "pass",
                ServeConfig::new().with_workers(1).with_dedup().paused(),
            )
            .unwrap();
        let tickets: Vec<Ticket> = (0..3).map(|_| serve.submit(&q(0.2, 0.8))).collect();
        assert_eq!(serve.queue_depth(), 1, "duplicates attached, not queued");
        serve.resume();
        let direct = session.estimate("pass", &q(0.2, 0.8)).unwrap();
        for t in tickets {
            let got = t.wait().results().unwrap();
            assert_eq!(got[0].as_ref().unwrap().value, direct.value);
        }
        let stats = serve.shutdown();
        assert_eq!(stats.accepted, 3);
        assert_eq!(stats.completed, 3);
        assert_eq!(stats.deduped, 2);
        assert_eq!(stats.per_engine[0].deduped, 2);
    }

    #[test]
    fn progressive_group_bys_stream_and_resolve_complete() {
        use pass_common::GroupByQuery;
        let cat: Vec<f64> = (0..4_000).map(|i| (i % 4) as f64).collect();
        let vals: Vec<f64> = (0..4_000).map(|i| ((i % 4) + 1) as f64).collect();
        let mut session = Session::new(pass_table::Table::one_dim(cat, vals).unwrap());
        session.add_engine("pass", &EngineSpec::pass()).unwrap();
        let serve = session
            .serve("pass", ServeConfig::new().with_workers(1))
            .unwrap();
        let gq = GroupByQuery::over(AggKind::Sum, 0, &[0.0, 1.0, 2.0, 3.0], 1);

        let ticket = serve.submit_progressive(&gq);
        let outcome = ticket.wait();
        assert!(outcome.is_done());
        assert!(!outcome.is_partial(), "no deadline: the stream completes");
        // Served progressive answers end bit-identical to the direct path.
        let direct = session.group_by("pass", &gq).unwrap();
        assert_eq!(outcome.groups().unwrap(), direct);
        assert!(ticket.snapshot_count() >= 1);
        assert!(ticket.latest().unwrap().last);

        // Empty category lists resolve without queueing.
        let empty = serve.submit_progressive(&GroupByQuery::over(AggKind::Sum, 0, &[], 1));
        assert_eq!(
            empty.wait(),
            ProgressiveOutcome::Done {
                groups: Vec::new(),
                partial: false
            }
        );

        // Malformed queries resolve to Failed, not a panic or a hang.
        let bad = serve.submit_progressive(&GroupByQuery::over(AggKind::Sum, 9, &[0.0], 1));
        assert!(matches!(bad.wait(), ProgressiveOutcome::Failed(_)));

        // Routing errors before admission; unknown engines never queue.
        assert!(serve.submit_progressive_to("nope", &gq).is_err());

        let stats = serve.shutdown();
        assert_eq!(stats.accepted, 2, "empty + routed-error never admitted");
        assert_eq!(stats.completed, 2);
    }

    #[test]
    fn progressive_deadline_resolves_partial_not_expired() {
        use pass_common::GroupByQuery;
        let cat: Vec<f64> = (0..6_000).map(|i| (i % 3) as f64).collect();
        let vals: Vec<f64> = (0..6_000).map(|i| ((i % 3) + 1) as f64).collect();
        let mut session = Session::new(pass_table::Table::one_dim(cat, vals).unwrap());
        session
            .add_sharded_engine(
                "p4",
                &EngineSpec::pass(),
                &pass_common::ShardPlan::row_range(4),
            )
            .unwrap();
        let serve = session
            .serve("p4", ServeConfig::new().with_workers(1).paused())
            .unwrap();
        let gq = GroupByQuery::over(AggKind::Sum, 0, &[0.0, 1.0, 2.0], 1);
        // A zero deadline has already passed when the worker picks the
        // request up — the plain path would expire it unexecuted; the
        // progressive contract still delivers the first snapshot.
        let ticket = serve.submit_progressive_with(
            &gq,
            &SubmitOptions::interactive().with_deadline(Duration::ZERO),
        );
        serve.resume();
        let outcome = ticket.wait();
        assert!(outcome.is_done(), "deadline never maps to Expired");
        assert!(outcome.is_partial(), "stopped mid-stream");
        let groups = outcome.groups().unwrap();
        assert_eq!(groups.len(), 3, "every group has a best-so-far row");
        assert_eq!(ticket.snapshot_count(), 1, "stopped after one snapshot");
        assert!(!ticket.latest().unwrap().last);
        let stats = serve.shutdown();
        assert_eq!(stats.expired, 0);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn progressive_rejection_and_cancellation_resolve_the_ticket() {
        use pass_common::GroupByQuery;
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_queue_depth(1)
                    .paused(),
            )
            .unwrap();
        let gq = GroupByQuery::over(AggKind::Sum, 0, &[0.2], 1);
        let _plug = serve.submit(&q(0.0, 0.5)); // fills the queue
        let rejected = serve.submit_progressive(&gq);
        assert_eq!(rejected.poll(), Some(ProgressiveOutcome::Rejected));
        let stats = serve.stats();
        assert_eq!((stats.accepted, stats.rejected), (1, 1));
        // A closed queue cancels.
        serve.shared.queue.close();
        let cancelled = serve.submit_progressive(&gq);
        assert_eq!(cancelled.wait(), ProgressiveOutcome::Cancelled);
    }

    #[test]
    fn dedup_attachment_is_bounded_per_request() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new().with_workers(1).with_dedup().paused(),
            )
            .unwrap();
        let n = MAX_ATTACHED_WAITERS + 2;
        let tickets: Vec<Ticket> = (0..n).map(|_| serve.submit(&q(0.2, 0.8))).collect();
        // The cap fills the first request; the overflow starts a second
        // that passes through normal admission control.
        assert_eq!(serve.queue_depth(), 2);
        serve.resume();
        for t in &tickets {
            assert!(t.wait().is_done());
        }
        let stats = serve.shutdown();
        assert_eq!(stats.accepted, n as u64);
        assert_eq!(stats.completed, n as u64);
        assert_eq!(stats.deduped, n as u64 - 2, "two requests actually queued");
    }
}
