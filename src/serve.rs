//! An async-style serving front-end with admission control over
//! [`SessionHandle`]s.
//!
//! The layers below this one make a single caller fast: batched queries
//! share PASS's tree traversal, parallel batches shard over a
//! [`ThreadPool`], and [`SessionHandle`] clones let many threads query
//! one immutable synopsis. What they do *not* answer is what happens
//! when more requests arrive than the machine can execute — that is a
//! serving-tier problem, and [`Serve`] is the serving tier:
//!
//! * **Submission is decoupled from execution.** [`Serve::submit`] (and
//!   [`submit_batch`](Serve::submit_batch) /
//!   [`submit_with`](Serve::submit_with)) enqueues the request on a
//!   bounded two-priority [`RequestQueue`] and immediately returns a
//!   [`Ticket`] the client polls or blocks on. Dedicated worker threads
//!   drain the queue and execute against a shared [`SessionHandle`].
//! * **Admission control sheds load instead of queueing it forever.** A
//!   full queue resolves the ticket to [`ServeOutcome::Rejected`]
//!   without blocking the submitter; a request whose deadline passes
//!   while queued resolves to [`ServeOutcome::Expired`] **without
//!   executing**, so a backlogged server stops burning workers on
//!   answers nobody is waiting for.
//! * **Two priority classes.** [`Priority::Interactive`] requests
//!   always pop before queued [`Priority::Bulk`] requests, so a
//!   latency-sensitive dashboard query overtakes a queued analytics
//!   sweep.
//! * **Queued requests coalesce into batches.** A worker that pops one
//!   request greedily drains further same-class requests (up to
//!   [`ServeConfig::coalesce_max`] queries) and executes them as **one**
//!   `estimate_many` batch — under load, the engine's batched fast path
//!   (PASS reuses its MCF traversal scratch across the batch) kicks in
//!   automatically, so saturation *increases* per-query efficiency.
//! * **Everything is observable.** [`Serve::stats`] reports
//!   accepted/rejected/expired/completed counts, the queue-depth
//!   high-water mark, and p50/p99 submit-to-completion latency from a
//!   fixed-bucket [`LatencyHistogram`].
//!
//! Served answers are **bit-identical** to direct
//! [`Session`](crate::Session) calls: the
//! worker executes through the same cached, deterministic synopsis, and
//! `tests/serve_contract.rs` pins this for the whole
//! `Engine::standard_suite`.
//!
//! There is deliberately no async runtime here — the workspace builds
//! offline and dependency-free, so "async-style" means pollable tickets
//! over parked OS threads (the same idiom as the vendored stubs), not
//! tokio.
//!
//! ```
//! use pass::{EngineSpec, ServeConfig, Session};
//! use pass::common::{AggKind, Query};
//! use pass::table::datasets::uniform;
//!
//! let mut session = Session::new(uniform(10_000, 42));
//! session.add_engine("pass", &EngineSpec::pass()).unwrap();
//!
//! // Spin up the serving front-end over the "pass" engine.
//! let serve = session
//!     .serve("pass", ServeConfig::new().with_workers(2))
//!     .unwrap();
//!
//! // Submissions return immediately; tickets resolve when a worker
//! // executes the request.
//! let q = Query::interval(AggKind::Sum, 0.2, 0.7);
//! let ticket = serve.submit(&q);
//! let batch: Vec<Query> = (0..64)
//!     .map(|i| Query::interval(AggKind::Count, i as f64 / 80.0, 0.9))
//!     .collect();
//! let batch_ticket = serve.submit_batch(&batch);
//!
//! // Served answers are bit-identical to direct session calls.
//! let result = &ticket.wait().results().unwrap()[0];
//! let direct = session.estimate("pass", &q).unwrap();
//! assert_eq!(result.as_ref().unwrap().value, direct.value);
//! assert_eq!(batch_ticket.wait().results().unwrap().len(), 64);
//!
//! let stats = serve.shutdown();
//! assert_eq!(stats.accepted, 2);
//! assert_eq!(stats.completed, 2);
//! assert_eq!(stats.rejected, 0);
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pass_common::{
    LatencyHistogram, Priority, PushError, Query, RequestQueue, ServeOutcome, ThreadPool, Ticket,
    TicketSlot,
};

use crate::session::SessionHandle;

/// Configuration for a [`Serve`] front-end.
///
/// The defaults describe a reasonable single-machine server: one worker
/// per core, a queue deep enough to absorb bursts (1024 requests), and
/// batches coalesced up to 256 queries — large enough to engage the
/// engines' batched fast paths, small enough to keep queueing delay per
/// batch bounded.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Dedicated serving worker threads (clamped to ≥ 1).
    pub workers: usize,
    /// Maximum queued requests before admission control rejects
    /// (clamped to ≥ 1).
    pub queue_depth: usize,
    /// Maximum queries one coalesced execution batch may hold. A single
    /// submission larger than this still executes (as its own batch);
    /// the cap only bounds how much *additional* queued work a worker
    /// glues on.
    pub coalesce_max: usize,
    /// Default deadline applied to submissions that do not carry their
    /// own; `None` means requests wait in the queue indefinitely.
    pub default_deadline: Option<Duration>,
    /// Start with workers parked until [`Serve::resume`] — used by tests
    /// and staged startups to fill the queue deterministically.
    pub start_paused: bool,
    /// Pool for intra-batch parallelism: each worker executes its
    /// coalesced batch through
    /// [`estimate_many_parallel`](pass_common::Synopsis::estimate_many_parallel)
    /// on this pool. The default single-thread pool makes that exactly
    /// the sequential batched path; give a wider pool to split very
    /// large batches across cores *within* one worker (results stay
    /// bit-identical — the parallel path is pinned to the sequential
    /// one by `tests/parallel_session.rs`).
    pub batch_pool: ThreadPool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers: ThreadPool::with_default_parallelism().threads(),
            queue_depth: 1024,
            coalesce_max: 256,
            default_deadline: None,
            start_paused: false,
            batch_pool: ThreadPool::new(1),
        }
    }
}

impl ServeConfig {
    /// The default configuration (see the field docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of dedicated worker threads.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Set the admission-control queue bound.
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Set the per-batch coalescing cap (queries).
    pub fn with_coalesce_max(mut self, max: usize) -> Self {
        self.coalesce_max = max;
        self
    }

    /// Apply `deadline` to every submission that does not set its own.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Start paused; call [`Serve::resume`] to begin draining.
    pub fn paused(mut self) -> Self {
        self.start_paused = true;
        self
    }

    /// Execute coalesced batches through `pool`
    /// (intra-batch parallelism; see [`ServeConfig::batch_pool`]).
    pub fn with_batch_pool(mut self, pool: ThreadPool) -> Self {
        self.batch_pool = pool;
        self
    }
}

/// Per-request submission options: priority class and optional deadline.
///
/// ```
/// use pass::SubmitOptions;
/// use std::time::Duration;
///
/// let opts = SubmitOptions::bulk().with_deadline(Duration::from_millis(50));
/// ```
#[derive(Debug, Clone)]
pub struct SubmitOptions {
    /// Admission class; interactive requests overtake queued bulk ones.
    pub priority: Priority,
    /// How long the request may wait in the queue before it expires
    /// (measured from submission). `None` falls back to the server's
    /// [`ServeConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

impl SubmitOptions {
    /// Interactive priority, no per-request deadline.
    pub fn interactive() -> Self {
        Self {
            priority: Priority::Interactive,
            deadline: None,
        }
    }

    /// Bulk priority, no per-request deadline.
    pub fn bulk() -> Self {
        Self {
            priority: Priority::Bulk,
            deadline: None,
        }
    }

    /// Expire the request if it is still queued `deadline` after
    /// submission.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

impl Default for SubmitOptions {
    /// Interactive, no deadline.
    fn default() -> Self {
        Self::interactive()
    }
}

/// A point-in-time snapshot of the serving front-end's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub accepted: u64,
    /// Requests refused because the queue was at capacity.
    pub rejected: u64,
    /// Requests whose deadline passed while queued (never executed).
    pub expired: u64,
    /// Requests executed to completion.
    pub completed: u64,
    /// Execution batches run (completed requests per batch > 1 means
    /// coalescing engaged).
    pub batches: u64,
    /// Deepest the request queue ever got.
    pub queue_high_water: usize,
    /// The admission bound the high-water mark saturates at.
    pub queue_capacity: usize,
    /// Median submit-to-completion latency, microseconds (conservative
    /// fixed-bucket estimate; 0 until something completes).
    pub p50_latency_us: u64,
    /// 99th-percentile submit-to-completion latency, microseconds.
    pub p99_latency_us: u64,
}

/// One queued unit of work: the submitted queries plus the ticket slot
/// that resolves them.
struct Request {
    queries: Vec<Query>,
    slot: TicketSlot,
    submitted: Instant,
    deadline: Option<Instant>,
}

struct ServeShared {
    handle: SessionHandle,
    queue: RequestQueue<Request>,
    coalesce_max: usize,
    batch_pool: ThreadPool,
    accepted: AtomicU64,
    rejected: AtomicU64,
    expired: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    /// Completion-order stamp handed to tickets (smaller = finished
    /// earlier).
    completion_seq: AtomicU64,
    latency: LatencyHistogram,
}

impl ServeShared {
    /// One worker's life: pop the highest-priority request (the queue
    /// itself parks the worker while paused — pause lives under the
    /// queue lock, so no request can slip past it), coalesce compatible
    /// queued requests into one batch, expire the stale, execute the
    /// rest, resolve every ticket. Exits when the queue is closed and
    /// drained.
    fn worker_loop(&self) {
        loop {
            let Some((first, class)) = self.queue.pop_blocking() else {
                return;
            };
            let mut requests = vec![first];
            let mut total = requests[0].queries.len();
            // Greedy same-class coalescing, atomically under one queue
            // lock: glue on queued requests while they fit the batch
            // budget. The queue refuses a bulk drain while interactive
            // work is queued, so a glued-together bulk batch can never
            // delay an interactive request.
            if total < self.coalesce_max {
                requests.extend(self.queue.drain_class_where(class, |r| {
                    if total + r.queries.len() <= self.coalesce_max {
                        total += r.queries.len();
                        true
                    } else {
                        false
                    }
                }));
            }
            self.execute(requests);
        }
    }

    /// Expire what is stale, run the rest as one engine batch, resolve
    /// all tickets.
    fn execute(&self, requests: Vec<Request>) {
        let now = Instant::now();
        let mut live: Vec<Request> = Vec::with_capacity(requests.len());
        for req in requests {
            match req.deadline {
                // Fail fast: the deadline passed while queued, so the
                // worker spends zero execution time on it.
                Some(deadline) if deadline <= now => {
                    self.expired.fetch_add(1, Ordering::Relaxed);
                    req.slot.fulfill(ServeOutcome::Expired, None);
                }
                _ => live.push(req),
            }
        }
        if live.is_empty() {
            return;
        }
        let queries: Vec<Query> = live
            .iter()
            .flat_map(|r| r.queries.iter().cloned())
            .collect();
        let results = self
            .handle
            .estimate_many_parallel(&queries, &self.batch_pool);
        self.batches.fetch_add(1, Ordering::Relaxed);
        debug_assert_eq!(results.len(), queries.len());
        let mut results = results.into_iter();
        for req in live {
            let slice: Vec<_> = results.by_ref().take(req.queries.len()).collect();
            let seq = self.completion_seq.fetch_add(1, Ordering::Relaxed);
            let waited_us = req.submitted.elapsed().as_micros().min(u64::MAX as u128) as u64;
            self.latency.record(waited_us);
            self.completed.fetch_add(1, Ordering::Relaxed);
            req.slot.fulfill(ServeOutcome::Done(slice), Some(seq));
        }
    }
}

/// The serving front-end: a bounded request queue, admission control,
/// and a fixed set of workers executing against one [`SessionHandle`].
///
/// Create one with [`Session::serve`](crate::Session::serve) (or
/// [`Serve::new`] from any handle). Submissions never block; execution
/// happens on the server's workers; results come back through
/// [`Ticket`]s. Dropping the server closes the queue, drains every
/// accepted request, and joins the workers — no accepted ticket is left
/// unresolved.
///
/// See the [serve module docs](crate::serve) for the full request
/// lifecycle.
pub struct Serve {
    shared: Arc<ServeShared>,
    default_deadline: Option<Duration>,
    workers: Vec<JoinHandle<()>>,
}

impl Serve {
    /// Start a serving front-end over `handle` (workers spawn
    /// immediately; parked first if [`ServeConfig::start_paused`]).
    pub fn new(handle: SessionHandle, config: ServeConfig) -> Self {
        let shared = Arc::new(ServeShared {
            handle,
            queue: RequestQueue::new(config.queue_depth),
            coalesce_max: config.coalesce_max.max(1),
            batch_pool: config.batch_pool,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            expired: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            completion_seq: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        });
        shared.queue.set_paused(config.start_paused);
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || shared.worker_loop())
            })
            .collect();
        Serve {
            shared,
            default_deadline: config.default_deadline,
            workers,
        }
    }

    /// The engine name this server executes against.
    pub fn engine(&self) -> &str {
        self.shared.handle.name()
    }

    /// Submit one interactive query with no per-request deadline.
    pub fn submit(&self, query: &Query) -> Ticket {
        self.submit_with(std::slice::from_ref(query), &SubmitOptions::default())
    }

    /// Submit a query batch (interactive, no per-request deadline). The
    /// whole batch is one request: it is admitted, expired, and resolved
    /// as a unit, and its ticket yields one result per query in order.
    pub fn submit_batch(&self, queries: &[Query]) -> Ticket {
        self.submit_with(queries, &SubmitOptions::default())
    }

    /// Submit with explicit [`SubmitOptions`]. Never blocks: the ticket
    /// resolves to [`ServeOutcome::Rejected`] immediately when the queue
    /// is at capacity (that is the backpressure signal) and to
    /// [`ServeOutcome::Cancelled`] when the server is shutting down. An
    /// empty batch resolves to an empty `Done` without queueing.
    pub fn submit_with(&self, queries: &[Query], options: &SubmitOptions) -> Ticket {
        if queries.is_empty() {
            return Ticket::resolved(ServeOutcome::Done(Vec::new()));
        }
        let submitted = Instant::now();
        let deadline = options
            .deadline
            .or(self.default_deadline)
            .map(|d| submitted + d);
        let (ticket, slot) = Ticket::pending();
        let request = Request {
            queries: queries.to_vec(),
            slot,
            submitted,
            deadline,
        };
        // Count acceptance *before* the push: the instant the request is
        // in the queue a worker may pop, execute, and bump `completed`,
        // and a mid-run stats() observer must never see
        // completed > accepted. Failed pushes undo the claim.
        self.shared.accepted.fetch_add(1, Ordering::Relaxed);
        match self.shared.queue.try_push(request, options.priority) {
            Ok(()) => ticket,
            Err((PushError::Full, request)) => {
                self.shared.accepted.fetch_sub(1, Ordering::Relaxed);
                self.shared.rejected.fetch_add(1, Ordering::Relaxed);
                request.slot.fulfill(ServeOutcome::Rejected, None);
                ticket
            }
            Err((PushError::Closed, request)) => {
                self.shared.accepted.fetch_sub(1, Ordering::Relaxed);
                request.slot.fulfill(ServeOutcome::Cancelled, None);
                ticket
            }
        }
    }

    /// Park the workers after their in-flight batches finish; queued and
    /// newly submitted requests wait (admission control still applies).
    /// The pause flag lives under the queue's own lock, so even a worker
    /// already parked inside a pop cannot slip a request past a pause.
    pub fn pause(&self) {
        self.shared.queue.set_paused(true);
    }

    /// Release paused workers.
    pub fn resume(&self) {
        self.shared.queue.set_paused(false);
    }

    /// Requests currently waiting in the queue.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.len()
    }

    /// A snapshot of the serving counters, queue high-water mark, and
    /// latency percentiles.
    pub fn stats(&self) -> ServeStats {
        ServeStats {
            accepted: self.shared.accepted.load(Ordering::Relaxed),
            rejected: self.shared.rejected.load(Ordering::Relaxed),
            expired: self.shared.expired.load(Ordering::Relaxed),
            completed: self.shared.completed.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
            queue_high_water: self.shared.queue.high_water(),
            queue_capacity: self.shared.queue.capacity(),
            p50_latency_us: self.shared.latency.p50(),
            p99_latency_us: self.shared.latency.p99(),
        }
    }

    /// Stop accepting, drain every queued request (deadlines still
    /// apply: stale requests expire rather than execute), join the
    /// workers, and return the final stats. Dropping the server does
    /// the same minus the stats.
    pub fn shutdown(mut self) -> ServeStats {
        self.shutdown_inner();
        self.stats()
    }

    fn shutdown_inner(&mut self) {
        // Closing wakes paused workers too: a closed queue drains
        // regardless of the pause flag.
        self.shared.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

impl std::fmt::Debug for Serve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Serve")
            .field("engine", &self.engine())
            .field("workers", &self.workers.len())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use pass_common::{AggKind, EngineSpec};
    use pass_table::datasets::uniform;

    fn served_session() -> Session {
        let mut s = Session::new(uniform(5_000, 77));
        s.add_engine("pass", &EngineSpec::pass()).unwrap();
        s
    }

    fn q(lo: f64, hi: f64) -> Query {
        Query::interval(AggKind::Sum, lo, hi)
    }

    #[test]
    fn single_and_batch_submissions_resolve_with_engine_answers() {
        let session = served_session();
        let serve = session
            .serve("pass", ServeConfig::new().with_workers(2))
            .unwrap();
        assert_eq!(serve.engine(), "pass");
        let single = serve.submit(&q(0.1, 0.9));
        let batch: Vec<Query> = (0..8).map(|i| q(i as f64 / 10.0, 0.95)).collect();
        let many = serve.submit_batch(&batch);
        let got = single.wait().results().unwrap();
        assert_eq!(
            got[0].as_ref().unwrap().value,
            session.estimate("pass", &q(0.1, 0.9)).unwrap().value
        );
        let got = many.wait().results().unwrap();
        assert_eq!(got.len(), 8);
        for (query, result) in batch.iter().zip(&got) {
            assert_eq!(
                result.as_ref().unwrap().value,
                session.estimate("pass", query).unwrap().value
            );
        }
        let stats = serve.shutdown();
        assert_eq!(stats.accepted, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!((stats.rejected, stats.expired), (0, 0));
        assert!(stats.batches >= 1);
        assert!(stats.p50_latency_us <= stats.p99_latency_us);
    }

    #[test]
    fn empty_batch_resolves_immediately() {
        let session = served_session();
        let serve = session.serve("pass", ServeConfig::new()).unwrap();
        let ticket = serve.submit_batch(&[]);
        assert_eq!(ticket.wait(), ServeOutcome::Done(Vec::new()));
        assert_eq!(serve.stats().accepted, 0);
    }

    #[test]
    fn queue_full_rejects_without_blocking() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_queue_depth(2)
                    .paused(),
            )
            .unwrap();
        let accepted: Vec<Ticket> = (0..2).map(|_| serve.submit(&q(0.0, 0.5))).collect();
        let rejected = serve.submit(&q(0.0, 0.6));
        assert_eq!(rejected.poll(), Some(ServeOutcome::Rejected));
        assert_eq!(rejected.completion_index(), None);
        let stats = serve.stats();
        assert_eq!((stats.accepted, stats.rejected), (2, 1));
        assert_eq!(stats.queue_high_water, 2);
        serve.resume();
        for t in accepted {
            assert!(t.wait().is_done());
        }
    }

    #[test]
    fn shutdown_drains_accepted_requests() {
        let session = served_session();
        let serve = session
            .serve("pass", ServeConfig::new().with_workers(1).paused())
            .unwrap();
        let tickets: Vec<Ticket> = (0..5)
            .map(|i| serve.submit(&q(0.0, 0.5 + i as f64 / 100.0)))
            .collect();
        // Shutdown resumes, drains, joins: every accepted ticket resolves.
        let stats = serve.shutdown();
        for t in tickets {
            assert!(t.wait().is_done());
        }
        assert_eq!(stats.completed, 5);
    }

    #[test]
    fn submissions_after_shutdown_are_cancelled() {
        let session = served_session();
        let serve = session.serve("pass", ServeConfig::new()).unwrap();
        // Close the queue out from under the facade, then submit.
        serve.shared.queue.close();
        let ticket = serve.submit(&q(0.0, 0.5));
        assert_eq!(ticket.wait(), ServeOutcome::Cancelled);
    }

    #[test]
    fn default_deadline_applies_to_queued_requests() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_default_deadline(Duration::ZERO)
                    .paused(),
            )
            .unwrap();
        let doomed = serve.submit(&q(0.0, 0.5));
        serve.resume();
        assert_eq!(doomed.wait(), ServeOutcome::Expired);
        assert_eq!(serve.stats().expired, 1);
        // An explicit generous deadline overrides the default.
        let fine = serve.submit_with(
            &[q(0.0, 0.5)],
            &SubmitOptions::interactive().with_deadline(Duration::from_secs(60)),
        );
        assert!(fine.wait().is_done());
    }

    #[test]
    fn coalescing_executes_queued_requests_in_fewer_batches() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_coalesce_max(64)
                    .paused(),
            )
            .unwrap();
        let tickets: Vec<Ticket> = (0..16)
            .map(|i| serve.submit(&q(i as f64 / 20.0, 0.9)))
            .collect();
        serve.resume();
        for (i, t) in tickets.iter().enumerate() {
            let got = t.wait().results().unwrap();
            assert_eq!(
                got[0].as_ref().unwrap().value,
                session
                    .estimate("pass", &q(i as f64 / 20.0, 0.9))
                    .unwrap()
                    .value,
                "request {i}"
            );
        }
        let stats = serve.shutdown();
        assert_eq!(stats.completed, 16);
        assert!(
            stats.batches < 16,
            "16 queued requests ran in {} batches — coalescing never engaged",
            stats.batches
        );
    }

    #[test]
    fn pausing_a_running_server_parks_workers_already_waiting_in_the_pop() {
        // Regression: pause() must hold back requests submitted *after*
        // the pause even when a worker is already parked inside the
        // queue's blocking pop (the flag lives under the queue lock).
        let session = served_session();
        let serve = session
            .serve("pass", ServeConfig::new().with_workers(2))
            .unwrap();
        // Let the workers reach pop_blocking on the empty queue.
        assert!(serve.submit(&q(0.0, 0.5)).wait().is_done());
        serve.pause();
        let parked = serve.submit(&q(0.1, 0.6));
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(parked.poll(), None, "executed while paused");
        assert_eq!(serve.queue_depth(), 1);
        serve.resume();
        assert!(parked.wait().is_done());
    }

    #[test]
    fn oversized_single_submission_still_executes() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new().with_workers(1).with_coalesce_max(4),
            )
            .unwrap();
        let big: Vec<Query> = (0..32).map(|i| q(i as f64 / 40.0, 0.9)).collect();
        let ticket = serve.submit_batch(&big);
        assert_eq!(ticket.wait().results().unwrap().len(), 32);
    }

    #[test]
    fn wide_batch_pool_stays_bit_identical() {
        let session = served_session();
        let serve = session
            .serve(
                "pass",
                ServeConfig::new()
                    .with_workers(1)
                    .with_batch_pool(ThreadPool::new(4)),
            )
            .unwrap();
        let batch: Vec<Query> = (0..128).map(|i| q((i % 40) as f64 / 50.0, 0.9)).collect();
        let got = serve.submit_batch(&batch).wait().results().unwrap();
        for (query, result) in batch.iter().zip(&got) {
            assert_eq!(
                result.as_ref().unwrap().value,
                session.estimate("pass", query).unwrap().value
            );
        }
    }
}
