//! # PASS — Precomputation-Assisted Stratified Sampling
//!
//! Reproduction of "Combining Aggregation and Sampling (Nearly) Optimally
//! for Approximate Query Processing" (SIGMOD 2021), grown into a unified
//! multi-engine AQP workspace.
//!
//! The public API has three layers:
//!
//! 1. **[`EngineSpec`]** (from [`pass_common`]) — declarative, plain-data
//!    configuration for every engine: PASS and the six Section 5 baselines
//!    (US, ST, AQP++/KD-US, VerdictDB-style, DeepDB-style). Specs compare,
//!    clone, and round-trip through JSON.
//! 2. **The [`Synopsis`] contract** — every engine answers single queries
//!    (`estimate`), batches (`estimate_many`; PASS reuses its index-
//!    traversal state across the whole batch), and parallel batches
//!    (`estimate_many_parallel`, sharded over a [`ThreadPool`]; PASS gives
//!    each worker its own traversal scratch), and reports the spec it was
//!    built from (`spec`). Synopses are immutable at query time and
//!    `Send + Sync`; the registry hands them out as `Arc<dyn Synopsis>`.
//! 3. **[`Session`]** — owns a table plus named engines built from specs,
//!    answers queries through a bounded per-engine result cache, hands out
//!    cheap [`SessionHandle`] clones for concurrent serving, and evaluates
//!    workloads with ground truth computed once and shared across engines.
//! 4. **[`Serve`]** — the async-style serving front-end over one or
//!    more session handles: submissions return pollable [`Ticket`]s, a
//!    bounded two-priority queue applies admission control (rejection
//!    at capacity, per-request deadlines, interactive-over-bulk
//!    ordering with earliest-deadline-first scheduling within a class),
//!    [`Session::serve_multi`] routes requests to named engines through
//!    one shared queue, identical queued requests can deduplicate into
//!    one execution, queued requests coalesce into the engines' batched
//!    fast path, and [`ServeStats`] reports counts (per engine too),
//!    queue high-water, and p50/p99 latency.
//!
//! Group-bys are first-class across all three layers: a
//! [`GroupByQuery`] (paper Section 4.5 — one equality rectangle per
//! category over a group dimension, a shared predicate rectangle on the
//! rest) is answered by every engine through
//! [`Synopsis::estimate_group_by`] / [`Session::group_by`] (PASS routes
//! the expansion through its batched MCF path), and **progressively**
//! through [`Serve::submit_progressive`]: the returned
//! [`ProgressiveTicket`] streams refining [`GroupBySnapshot`]s as a
//! sharded engine merges shard after shard — each intermediate carries
//! a conservative CI that only tightens — and a deadline that passes
//! mid-stream resolves to the best estimate so far
//! ([`ProgressiveOutcome::Done`] with `partial: true`), never an
//! `Expired` with no data.
//!
//! ```
//! use pass::{EngineSpec, Session};
//! use pass::common::{AggKind, PassSpec, Query};
//! use pass::table::datasets::uniform;
//!
//! // One session, two engines, declaratively configured.
//! let mut session = Session::new(uniform(20_000, 42));
//! session
//!     .add_engine(
//!         "pass",
//!         &EngineSpec::Pass(PassSpec {
//!             partitions: 32,
//!             sample_rate: 0.01,
//!             ..PassSpec::default()
//!         }),
//!     )
//!     .unwrap();
//! session.add_engine("us", &EngineSpec::uniform(1_000)).unwrap();
//!
//! // Single query with a confidence interval and hard bounds.
//! let q = Query::interval(AggKind::Sum, 0.2, 0.7);
//! let est = session.estimate("pass", &q).unwrap();
//! let truth = session.ground_truth(&q).unwrap();
//! assert!((est.value - truth).abs() / truth < 0.2);
//!
//! // Batched queries reuse PASS's tree traversal across the batch.
//! let batch: Vec<Query> = (0..8)
//!     .map(|i| Query::interval(AggKind::Count, i as f64 * 0.1, i as f64 * 0.1 + 0.2))
//!     .collect();
//! let results = session.estimate_many("pass", &batch).unwrap();
//! assert_eq!(results.len(), 8);
//!
//! // Engines round-trip their specs.
//! assert_eq!(session.spec("us"), Some(EngineSpec::uniform(1_000)));
//! ```
//!
//! The sub-crates remain available for direct use: [`core`] holds the
//! PASS synopsis itself (`Pass::from_spec` for concrete-typed access,
//! e.g. streaming updates), [`baselines`] the comparator engines and the
//! [`Engine`] registry, and [`workload`] the query generators and the
//! per-query/batched/parallel runners.

#![warn(missing_docs)]

pub use pass_baselines as baselines;
pub use pass_common as common;
pub use pass_core as core;
pub use pass_partition as partition;
pub use pass_sampling as sampling;
pub use pass_table as table;
pub use pass_workload as workload;

pub mod serve;
mod session;

pub use pass_baselines::Engine;
pub use pass_common::{
    CacheStats, EngineSpec, GroupByQuery, GroupBySnapshot, GroupResult, PartialEstimate, PassSpec,
    Priority, ProgressiveOutcome, ProgressiveTicket, ServeOutcome, ShardPlan, Synopsis, ThreadPool,
    Ticket,
};
pub use serve::{EngineServeStats, Serve, ServeConfig, ServeStats, SubmitOptions};
pub use session::{Session, SessionHandle, DEFAULT_CACHE_CAPACITY};
