//! # PASS — Precomputation-Assisted Stratified Sampling
//!
//! Facade crate re-exporting the full public API of the PASS workspace.
//! See the README for a tour; start with [`pass_core`]'s `Pass` type.

pub use pass_baselines as baselines;
pub use pass_common as common;
pub use pass_core as core;
pub use pass_partition as partition;
pub use pass_sampling as sampling;
pub use pass_table as table;
pub use pass_workload as workload;
