//! Offline, API-compatible subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of proptest its test suites use: the
//! [`Strategy`] trait with `prop_map`, range / tuple / [`Just`] /
//! weighted-union strategies, `prop::collection::vec`, the [`proptest!`]
//! macro with `#![proptest_config(...)]` support, and the `prop_assert*`
//! macros.
//!
//! Differences from upstream: cases are generated from a fixed
//! deterministic seed sequence (no persisted failure files) and failing
//! cases are **not shrunk** — the panic message carries the case number so
//! a failure is still reproducible by rerunning the test.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-case generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(pub StdRng);

impl TestRng {
    /// Each case draws from an independent, deterministic stream.
    pub fn for_case(case: u64) -> Self {
        TestRng(StdRng::seed_from_u64(
            0x9E37_79B9u64 ^ (case.wrapping_mul(0x100_0193)),
        ))
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of test values.
///
/// `generate` is object-safe so that [`prop_oneof!`] can mix strategy
/// types behind `Box<dyn Strategy>`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A heap-allocated strategy, used by [`prop_oneof!`].
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The `prop_map` combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
    (A, B, C, D, E, F, G);
    (A, B, C, D, E, F, G, H);
}

/// Weighted union over same-valued strategies (behind [`prop_oneof!`]).
pub struct Union<T> {
    variants: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    pub fn new(variants: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(
            !variants.is_empty(),
            "prop_oneof! needs at least one variant"
        );
        let total_weight = variants.iter().map(|(w, _)| *w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! weights must not all be zero");
        Union {
            variants,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rand::Rng::gen_range(&mut rng.0, 0..self.total_weight);
        for (w, s) in &self.variants {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights cover the sampled value")
    }
}

pub mod strategy {
    pub use crate::{BoxedStrategy, Just, Map, Strategy, Union};
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// Acceptable size arguments for [`vec()`].
        pub trait SizeRange {
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }

        impl SizeRange for RangeInclusive<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                rand::Rng::gen_range(&mut rng.0, self.clone())
            }
        }

        /// Vector of values from `element`, with length drawn from `size`.
        pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
            VecStrategy { element, size }
        }

        pub struct VecStrategy<S, Z> {
            element: S,
            size: Z,
        }

        impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.size.pick(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// `prop_oneof![s1, s2, ...]` or `prop_oneof![w1 => s1, w2 => s2, ...]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// The proptest entry macro: each `fn name(pat in strategy, ...)` becomes a
/// `#[test]` that runs the body over `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($config); $($rest)*);
    };
    (@run ($config:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng = $crate::TestRng::for_case(case);
                    $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let _ = case;
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate_in_bounds() {
        let mut rng = TestRng::for_case(0);
        let s = (0.0f64..1.0, 5usize..10).prop_map(|(x, n)| (x * 2.0, n));
        for _ in 0..100 {
            let (x, n) = s.generate(&mut rng);
            assert!((0.0..2.0).contains(&x));
            assert!((5..10).contains(&n));
        }
    }

    #[test]
    fn oneof_honours_weights() {
        let mut rng = TestRng::for_case(1);
        let s = prop_oneof![9 => Just(1u64), 1 => Just(2u64)];
        let mut ones = 0;
        for _ in 0..1_000 {
            if s.generate(&mut rng) == 1 {
                ones += 1;
            }
        }
        assert!(ones > 800, "ones = {ones}");
    }

    #[test]
    fn collection_vec_sizes() {
        let mut rng = TestRng::for_case(2);
        let s = prop::collection::vec(0u32..5, 3usize..7);
        for _ in 0..50 {
            let v = s.generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_patterns((a, b) in (0u32..10, 0u32..10), c in 0usize..4) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(c < 4);
            prop_assert_eq!(a + b, b + a);
            prop_assert_ne!(c, 9);
        }
    }
}
