//! Offline, API-compatible subset of the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of criterion its micro-benchmarks use:
//! [`Criterion`], benchmark groups with `bench_with_input` /
//! `bench_function`, [`BenchmarkId`], `Bencher::iter`, [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is a simple adaptive wall-clock loop (warm-up, then enough
//! iterations to fill a fixed measurement window) reporting the mean
//! time per iteration — no statistics, plots, or baseline comparisons.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId {
            function: Some(s),
            parameter: None,
        }
    }
}

/// Runs one benchmark's measured closure.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by [`iter`](Self::iter).
    ns_per_iter: f64,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    /// Measure `routine`: warm up briefly, then run enough iterations to
    /// fill the measurement window and record the mean time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: run until 10ms or 10 iterations.
        let warmup = Instant::now();
        let mut calib_iters = 0u64;
        while calib_iters < 10 || warmup.elapsed() < Duration::from_millis(10) {
            black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = warmup.elapsed().as_secs_f64() / calib_iters as f64;
        let target = (self.measure_for.as_secs_f64() / per_iter.max(1e-9)).ceil();
        let iters = (target as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.iters = iters;
        self.ns_per_iter = elapsed.as_secs_f64() * 1e9 / iters as f64;
    }
}

fn format_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.3} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; the stub's adaptive
    /// window ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.criterion.measure_for = time;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id, |b| f(b, input));
        self
    }

    fn run(&mut self, id: &BenchmarkId, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            ns_per_iter: 0.0,
            iters: 0,
            measure_for: self.criterion.measure_for,
        };
        f(&mut bencher);
        println!(
            "{}/{:<40} time: [{}]  ({} iterations)",
            self.name,
            id.to_string(),
            format_time(bencher.ns_per_iter),
            bencher.iters
        );
    }

    pub fn finish(&mut self) {
        println!();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short window: these stubs run in CI, not for publication.
            measure_for: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmarking group `{name}`");
        BenchmarkGroup {
            name,
            criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(BenchmarkId::from(name), |b| f(b));
        self
    }

    /// Upstream parses CLI flags here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($group(&mut criterion);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion {
            measure_for: Duration::from_millis(5),
        };
        let mut group = c.benchmark_group("smoke");
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
