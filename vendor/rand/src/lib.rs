//! Offline, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the thin slice of `rand` it actually uses:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`);
//! * the [`RngCore`] / [`SeedableRng`] traits and the [`Rng`] extension
//!   trait (`gen`, `gen_range`, `gen_bool`);
//! * [`seq::index::sample`] — Floyd's algorithm for sampling distinct
//!   indices without replacement.
//!
//! Streams are NOT bit-compatible with upstream `rand`; the workspace only
//! relies on determinism-given-seed and statistical quality, both of which
//! xoshiro256++ provides.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling from a range, for [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}
int_range_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + f64::sample(rng) * (self.end() - self.start())
    }
}

/// The user-facing extension trait, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for upstream's
    /// ChaCha12-based `StdRng`; same trait surface, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            // All-zero state would be a fixed point; SplitMix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    pub mod index {
        use crate::{Rng, RngCore};

        /// The distinct indices produced by [`sample`].
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length` uniformly.
        ///
        /// Uses a partial Fisher–Yates shuffle over a dense index vector
        /// when the sampling fraction is large, and Floyd's algorithm with
        /// a membership check otherwise.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(
                amount <= length,
                "cannot sample {amount} distinct indices from 0..{length}"
            );
            if amount * 3 >= length {
                // Partial Fisher–Yates.
                let mut pool: Vec<usize> = (0..length).collect();
                for i in 0..amount {
                    let j = rng.gen_range(i..length);
                    pool.swap(i, j);
                }
                pool.truncate(amount);
                IndexVec(pool)
            } else {
                // Floyd's algorithm: O(amount) memory, no duplicates.
                let mut chosen: Vec<usize> = Vec::with_capacity(amount);
                for j in (length - amount)..length {
                    let t = rng.gen_range(0..=j);
                    if chosen.contains(&t) {
                        chosen.push(j);
                    } else {
                        chosen.push(t);
                    }
                }
                IndexVec(chosen)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn determinism_and_stream_independence() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let v = rng.gen_range(0u32..5);
            assert!(v < 5);
            let v = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&v));
            let v = rng.gen_range(10u64..=12);
            assert!((10..=12).contains(&v));
        }
    }

    #[test]
    fn index_sample_is_distinct_and_complete() {
        let mut rng = StdRng::seed_from_u64(11);
        for (len, k) in [(100, 10), (100, 90), (50, 50), (1000, 1)] {
            let mut idx = seq::index::sample(&mut rng, len, k).into_vec();
            assert_eq!(idx.len(), k);
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), k, "duplicates for len={len} k={k}");
            assert!(idx.iter().all(|&i| i < len));
        }
    }

    #[test]
    fn index_sample_is_roughly_uniform() {
        // Every index should be picked a similar number of times.
        let mut rng = StdRng::seed_from_u64(13);
        let mut hits = [0u32; 20];
        for _ in 0..2_000 {
            for i in seq::index::sample(&mut rng, 20, 5) {
                hits[i] += 1;
            }
        }
        // Expectation 500 per slot.
        for (i, &h) in hits.iter().enumerate() {
            assert!((350..650).contains(&h), "slot {i}: {h}");
        }
    }
}
