//! End-to-end integration tests spanning every crate: datasets → specs →
//! `Session` → workload runner, asserting the paper's headline claims at
//! test scale.

use pass::common::{AggKind, PartitionStrategy, PassSpec, Query, Synopsis};
use pass::core::Pass;
use pass::table::datasets::{adversarial, DatasetId};
use pass::table::SortedTable;
use pass::workload::{challenging_queries, random_queries};
use pass::{EngineSpec, Session};

/// The Table 1 premise: controlling for sample budget, PASS is more
/// accurate than uniform sampling on every dataset for every aggregate.
#[test]
fn pass_beats_uniform_sampling_across_datasets_and_aggregates() {
    for id in DatasetId::ALL {
        let table = id.generate(60_000, 1);
        let sorted = SortedTable::from_table(&table, 0);
        // Budget-matching US requires PASS's realized sample count, so
        // build PASS concretely and adopt it into the session.
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: 32,
                sample_rate: 0.01,
                seed: 2,
                ..PassSpec::default()
            },
        )
        .unwrap();
        let budget = pass.total_samples();
        let mut session = Session::new(table);
        session.add_synopsis("pass", Box::new(pass));
        session
            .add_engine("us", &EngineSpec::uniform(budget).with_seed(2))
            .unwrap();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let queries = random_queries(&sorted, 120, agg, 600, 3);
            let rows = session.run_workload_all(&queries);
            let (p, u) = (&rows[0], &rows[1]);
            assert!(
                p.median_relative_error <= u.median_relative_error * 1.05,
                "{id}/{agg}: PASS {} vs US {}",
                p.median_relative_error,
                u.median_relative_error
            );
        }
    }
}

/// The Figure 6 premise: variance-optimized partitioning (ADP) beats
/// equal-depth partitioning on challenging workloads over skewed data.
#[test]
fn adp_beats_equal_depth_on_adversarial_challenging_queries() {
    let table = adversarial(120_000, 4);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = challenging_queries(&sorted, 150, AggKind::Sum, 4_096, 0.01, 5);

    let spec = |strategy| {
        EngineSpec::Pass(PassSpec {
            partitions: 32,
            sample_rate: 0.01,
            strategy,
            seed: 6,
            ..PassSpec::default()
        })
    };
    let session = Session::with_engines(
        table,
        &[
            ("adp", spec(PartitionStrategy::Adp(AggKind::Sum))),
            ("eq", spec(PartitionStrategy::EqualDepth)),
        ],
    )
    .unwrap();
    let rows = session.run_workload_all(&queries);
    let (a, e) = (&rows[0], &rows[1]);
    assert!(
        a.median_ci_ratio < e.median_ci_ratio,
        "ADP CI {} should beat EQ CI {}",
        a.median_ci_ratio,
        e.median_ci_ratio
    );
    assert!(
        a.median_relative_error <= e.median_relative_error,
        "ADP err {} vs EQ err {}",
        a.median_relative_error,
        e.median_relative_error
    );
}

/// PASS skip rates are near 1 for selective 1-D queries (Figure 8's
/// right-panel behaviour in one dimension).
#[test]
fn skip_rate_is_high_for_selective_queries() {
    let table = DatasetId::NycTaxi.generate(80_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, 100, AggKind::Sum, 800, 9);
    let session = Session::with_engines(
        table,
        &[(
            "pass",
            EngineSpec::Pass(PassSpec {
                partitions: 64,
                sample_rate: 0.02,
                seed: 8,
                ..PassSpec::default()
            }),
        )],
    )
    .unwrap();
    let (summary, _) = session.run_workload("pass", &queries).unwrap();
    assert!(
        summary.mean_skip_rate > 0.97,
        "skip rate {}",
        summary.mean_skip_rate
    );
}

/// All engines answer the same workload without panicking and their
/// summaries are internally consistent.
#[test]
fn all_engines_run_one_workload() {
    let table = DatasetId::Intel.generate(40_000, 10);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, 60, AggKind::Sum, 400, 11);

    let session = Session::with_engines(
        table,
        &[
            (
                "pass",
                EngineSpec::Pass(PassSpec {
                    partitions: 16,
                    sample_rate: 0.01,
                    seed: 12,
                    ..PassSpec::default()
                }),
            ),
            ("us", EngineSpec::uniform(400).with_seed(12)),
            ("st", EngineSpec::stratified(16, 400).with_seed(12)),
            ("aqp", EngineSpec::aqppp(16, 400).with_seed(12)),
            ("verdict", EngineSpec::verdict(0.05).with_seed(12)),
            ("spn", EngineSpec::spn(0.5).with_seed(12)),
        ],
    )
    .unwrap();

    for name in session.engine_names() {
        let (summary, outcomes) = session.run_workload(name, &queries).unwrap();
        assert_eq!(summary.queries, outcomes.len(), "{name}");
        assert!(summary.median_relative_error.is_finite());
        assert!(summary.storage_bytes > 0);
        assert!(summary.median_relative_error < 0.5, "{name}");
        assert!(summary.build_ms >= 0.0);
    }
}

/// Determinism across the whole pipeline: same seeds → identical results.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let table = DatasetId::Instacart.generate(30_000, 13);
        let sorted = SortedTable::from_table(&table, 0);
        let queries = random_queries(&sorted, 50, AggKind::Avg, 300, 15);
        let session = Session::with_engines(
            table,
            &[(
                "pass",
                EngineSpec::Pass(PassSpec {
                    partitions: 16,
                    sample_rate: 0.01,
                    seed: 14,
                    ..PassSpec::default()
                }),
            )],
        )
        .unwrap();
        let (summary, _) = session.run_workload("pass", &queries).unwrap();
        summary.median_relative_error
    };
    assert_eq!(run(), run());
}

/// Exactness contract: queries aligned with leaf boundaries have zero
/// error, zero CI, and matching hard bounds — across aggregates, whether
/// asked one at a time or as a batch.
#[test]
fn aligned_queries_are_exact_end_to_end() {
    let table = DatasetId::NycTaxi.generate(50_000, 16);
    let pass = Pass::from_spec(
        &table,
        &PassSpec {
            partitions: 32,
            sample_rate: 0.005,
            seed: 17,
            ..PassSpec::default()
        },
    )
    .unwrap();
    let leaves = pass.tree().leaves();
    // Union of leaves 3..=9 is a contiguous aligned range.
    let lo = pass.tree().rect_lo(leaves[3], 0);
    let hi = pass.tree().rect_hi(leaves[9], 0);
    let queries: Vec<Query> = AggKind::ALL
        .into_iter()
        .map(|agg| Query::interval(agg, lo, hi))
        .collect();
    let batch = pass.estimate_many(&queries);
    for (q, batched) in queries.iter().zip(batch) {
        let est = pass.estimate(q).unwrap();
        let batched = batched.unwrap();
        let truth = table.ground_truth(q).unwrap();
        assert!(est.exact, "{}", q.agg);
        assert!(
            (est.value - truth).abs() <= 1e-9 * truth.abs().max(1.0),
            "{}: {} vs {truth}",
            q.agg,
            est.value
        );
        assert_eq!(est.value, batched.value, "{}", q.agg);
        assert_eq!(est.exact, batched.exact, "{}", q.agg);
    }
}
