//! End-to-end integration tests spanning every crate: datasets → builders
//! → engines → workload runner, asserting the paper's headline claims at
//! test scale.

use pass::baselines::{AqpPlusPlus, StratifiedSynopsis, UniformSynopsis};
use pass::common::{AggKind, Query, Synopsis};
use pass::core::{PassBuilder, PartitionStrategy};
use pass::table::datasets::{adversarial, DatasetId};
use pass::table::SortedTable;
use pass::workload::{challenging_queries, random_queries, run_workload, Truth};

/// The Table 1 premise: controlling for sample budget, PASS is more
/// accurate than uniform sampling on every dataset for every aggregate.
#[test]
fn pass_beats_uniform_sampling_across_datasets_and_aggregates() {
    for id in DatasetId::ALL {
        let table = id.generate(60_000, 1);
        let sorted = SortedTable::from_table(&table, 0);
        let truth = Truth::new(&table);
        let pass = PassBuilder::new()
            .partitions(32)
            .sample_rate(0.01)
            .seed(2)
            .build(&table)
            .unwrap();
        let us = UniformSynopsis::build(&table, pass.total_samples(), 2).unwrap();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let queries = random_queries(&sorted, 120, agg, 600, 3);
            let (p, _) = run_workload(&pass, &queries, &truth, None);
            let (u, _) = run_workload(&us, &queries, &truth, None);
            assert!(
                p.median_relative_error <= u.median_relative_error * 1.05,
                "{id}/{agg}: PASS {} vs US {}",
                p.median_relative_error,
                u.median_relative_error
            );
        }
    }
}

/// The Figure 6 premise: variance-optimized partitioning (ADP) beats
/// equal-depth partitioning on challenging workloads over skewed data.
#[test]
fn adp_beats_equal_depth_on_adversarial_challenging_queries() {
    let table = adversarial(120_000, 4);
    let sorted = SortedTable::from_table(&table, 0);
    let truth = Truth::new(&table);
    let queries = challenging_queries(&sorted, 150, AggKind::Sum, 4_096, 0.01, 5);

    let build = |strategy| {
        PassBuilder::new()
            .partitions(32)
            .sample_rate(0.01)
            .strategy(strategy)
            .seed(6)
            .build(&table)
            .unwrap()
    };
    let adp = build(PartitionStrategy::Adp(AggKind::Sum));
    let eq = build(PartitionStrategy::EqualDepth);
    let (a, _) = run_workload(&adp, &queries, &truth, None);
    let (e, _) = run_workload(&eq, &queries, &truth, None);
    assert!(
        a.median_ci_ratio < e.median_ci_ratio,
        "ADP CI {} should beat EQ CI {}",
        a.median_ci_ratio,
        e.median_ci_ratio
    );
    assert!(
        a.median_relative_error <= e.median_relative_error,
        "ADP err {} vs EQ err {}",
        a.median_relative_error,
        e.median_relative_error
    );
}

/// PASS skip rates are near 1 for selective 1-D queries (Figure 8's
/// right-panel behaviour in one dimension).
#[test]
fn skip_rate_is_high_for_selective_queries() {
    let table = DatasetId::NycTaxi.generate(80_000, 7);
    let sorted = SortedTable::from_table(&table, 0);
    let truth = Truth::new(&table);
    let pass = PassBuilder::new()
        .partitions(64)
        .sample_rate(0.02)
        .seed(8)
        .build(&table)
        .unwrap();
    let queries = random_queries(&sorted, 100, AggKind::Sum, 800, 9);
    let (summary, _) = run_workload(&pass, &queries, &truth, None);
    assert!(
        summary.mean_skip_rate > 0.97,
        "skip rate {}",
        summary.mean_skip_rate
    );
}

/// All engines answer the same workload without panicking and their
/// summaries are internally consistent.
#[test]
fn all_engines_run_one_workload() {
    let table = DatasetId::Intel.generate(40_000, 10);
    let sorted = SortedTable::from_table(&table, 0);
    let truth = Truth::new(&table);
    let queries = random_queries(&sorted, 60, AggKind::Sum, 400, 11);

    let pass = PassBuilder::new()
        .partitions(16)
        .sample_rate(0.01)
        .seed(12)
        .build(&table)
        .unwrap();
    let us = UniformSynopsis::build(&table, 400, 12).unwrap();
    let st = StratifiedSynopsis::build(&table, 16, 400, 12).unwrap();
    let aqp = AqpPlusPlus::build(&table, 16, 400, 12).unwrap();
    let verdict = pass::baselines::VerdictSynopsis::build(&table, 0.05, 12).unwrap();
    let spn = pass::baselines::SpnSynopsis::build(&table, 0.5, 12).unwrap();

    for engine in [
        &pass as &dyn Synopsis,
        &us,
        &st,
        &aqp,
        &verdict,
        &spn,
    ] {
        let (summary, outcomes) = run_workload(engine, &queries, &truth, None);
        assert_eq!(summary.queries, outcomes.len(), "{}", engine.name());
        assert!(summary.median_relative_error.is_finite());
        assert!(summary.storage_bytes > 0);
        assert!(summary.median_relative_error < 0.5, "{}", engine.name());
    }
}

/// Determinism across the whole pipeline: same seeds → identical tables.
#[test]
fn full_pipeline_is_deterministic() {
    let run = || {
        let table = DatasetId::Instacart.generate(30_000, 13);
        let sorted = SortedTable::from_table(&table, 0);
        let truth = Truth::new(&table);
        let pass = PassBuilder::new()
            .partitions(16)
            .sample_rate(0.01)
            .seed(14)
            .build(&table)
            .unwrap();
        let queries = random_queries(&sorted, 50, AggKind::Avg, 300, 15);
        let (summary, _) = run_workload(&pass, &queries, &truth, None);
        summary.median_relative_error
    };
    assert_eq!(run(), run());
}

/// Exactness contract: queries aligned with leaf boundaries have zero
/// error, zero CI, and matching hard bounds — across aggregates.
#[test]
fn aligned_queries_are_exact_end_to_end() {
    let table = DatasetId::NycTaxi.generate(50_000, 16);
    let pass = PassBuilder::new()
        .partitions(32)
        .sample_rate(0.005)
        .seed(17)
        .build(&table)
        .unwrap();
    let leaves = pass.tree().leaves();
    // Union of leaves 3..=9 is a contiguous aligned range.
    let lo = pass.tree().node(leaves[3]).rect.lo(0);
    let hi = pass.tree().node(leaves[9]).rect.hi(0);
    for agg in AggKind::ALL {
        let q = Query::interval(agg, lo, hi);
        let est = pass.estimate(&q).unwrap();
        let truth = table.ground_truth(&q).unwrap();
        assert!(est.exact, "{agg}");
        assert!(
            (est.value - truth).abs() <= 1e-9 * truth.abs().max(1.0),
            "{agg}: {} vs {truth}",
            est.value
        );
    }
}
