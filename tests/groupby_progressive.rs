//! Property-based tests (proptest) pinning the online-aggregation
//! contract of [`Synopsis::estimate_group_by_progressive`]:
//!
//! * published snapshot CI widths are **non-increasing**, per group,
//!   from the first snapshot through the final one;
//! * under exact engines (PASS at `sample_rate: 1.0`) every
//!   intermediate snapshot's CI **contains the final point estimate**
//!   — the refinement narrows onto the answer, it never excludes it;
//! * the final snapshot is **bit-identical** to the non-progressive
//!   [`Synopsis::estimate_group_by`] answer — streaming is a view of
//!   the same computation, not a different estimator.

use proptest::prelude::*;

use pass::common::{
    AggKind, EngineSpec, GroupByQuery, GroupBySnapshot, PassSpec, ShardPlan, Synopsis,
};
use pass::table::Table;
use pass::Engine;

/// Strategy: a small categorical table (category code on the predicate
/// dimension, value with per-category offset plus noise) and a shard
/// count.
fn table_params() -> impl Strategy<Value = (Vec<f64>, usize, usize)> {
    (
        prop::collection::vec(-20.0f64..100.0, 60..240),
        2usize..5, // categories
        2usize..5, // shards
    )
}

fn build_table(noise: &[f64], categories: usize) -> Table {
    let cat: Vec<f64> = (0..noise.len()).map(|i| (i % categories) as f64).collect();
    let values: Vec<f64> = noise
        .iter()
        .enumerate()
        .map(|(i, v)| ((i % categories) + 1) as f64 * 50.0 + v)
        .collect();
    Table::one_dim(cat, values).unwrap()
}

fn keys(categories: usize) -> Vec<f64> {
    (0..categories).map(|c| c as f64).collect()
}

/// Collect every published snapshot plus the returned final groups.
fn run_progressive(
    engine: &dyn Synopsis,
    query: &GroupByQuery,
) -> (Vec<GroupBySnapshot>, Vec<pass::GroupResult>) {
    let mut snapshots = Vec::new();
    let groups = engine
        .estimate_group_by_progressive(query, &mut |snap| {
            snapshots.push(snap);
            true
        })
        .unwrap();
    (snapshots, groups)
}

/// A group row's CI width; `Err` rows are infinitely wide (any later
/// answer is an improvement).
fn row_width(row: &pass::GroupResult) -> f64 {
    row.estimate
        .as_ref()
        .map_or(f64::INFINITY, |est| est.ci_half)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exact engines (PASS, full sample): widths tighten monotonically
    /// to zero, every intermediate CI contains the final point, and the
    /// final snapshot is the non-progressive answer bit for bit.
    #[test]
    fn progressive_refinement_tightens_onto_the_exact_answer(
        (noise, categories, shards) in table_params(),
        agg_idx in 0usize..3,
    ) {
        let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg][agg_idx];
        let table = build_table(&noise, categories);
        let spec = EngineSpec::sharded(
            EngineSpec::Pass(PassSpec {
                partitions: 4,
                sample_rate: 1.0,
                seed: 7,
                ..PassSpec::default()
            }),
            ShardPlan::row_range(shards),
        );
        let engine = Engine::build(&table, &spec).unwrap();
        let query = GroupByQuery::over(agg, 0, &keys(categories), 1);

        let (snapshots, groups) = run_progressive(engine.as_ref(), &query);
        prop_assert!(!snapshots.is_empty());
        let last = snapshots.last().unwrap();
        prop_assert!(last.last);
        prop_assert_eq!(last.shards_merged, last.shards_total);

        // Final snapshot ≡ returned groups ≡ the non-progressive path.
        let direct = engine.estimate_group_by(&query).unwrap();
        prop_assert_eq!(&last.groups, &groups);
        prop_assert_eq!(&groups, &direct);

        for (g, row) in direct.iter().enumerate() {
            let final_est = row.estimate.as_ref().unwrap();
            let mut prev = f64::INFINITY;
            for snap in &snapshots {
                let width = row_width(&snap.groups[g]);
                // Monotone refinement, snapshot over snapshot.
                prop_assert!(
                    width <= prev + 1e-9,
                    "group {g}: width {width} grew past {prev}"
                );
                prev = width;
                // Soundness: every intermediate CI contains the final
                // point estimate (exact engine — the final point is the
                // true answer of the estimator).
                if let Ok(est) = &snap.groups[g].estimate {
                    let (lo, hi) = est.ci();
                    prop_assert!(
                        lo - 1e-6 <= final_est.value && final_est.value <= hi + 1e-6,
                        "group {g}: final {} outside intermediate CI [{lo}, {hi}]",
                        final_est.value
                    );
                }
            }
            // Full sample: the final answer is exact with a zero CI.
            prop_assert!(final_est.exact);
            prop_assert_eq!(final_est.ci_half, 0.0);
        }
    }

    /// Sampling engines: the stream still refines monotonically and the
    /// final snapshot is still bit-identical to the direct path, even
    /// when answers carry sampling error (and some groups may be
    /// availability `Err` rows on some shards).
    #[test]
    fn progressive_stream_is_consistent_under_sampling(
        (noise, categories, shards) in table_params(),
        sample_k in 40usize..120,
    ) {
        let table = build_table(&noise, categories);
        let spec = EngineSpec::sharded(
            EngineSpec::uniform(sample_k).with_seed(5),
            ShardPlan::row_range(shards),
        );
        let engine = Engine::build(&table, &spec).unwrap();
        let query = GroupByQuery::over(AggKind::Sum, 0, &keys(categories), 1);

        let (snapshots, groups) = run_progressive(engine.as_ref(), &query);
        prop_assert!(!snapshots.is_empty());
        prop_assert_eq!(&snapshots.last().unwrap().groups, &groups);
        prop_assert_eq!(&groups, &engine.estimate_group_by(&query).unwrap());

        // Published widths never widen, per group, across the stream —
        // intermediates by the publish filter, the final snapshot
        // because exact merging beats extrapolation.
        for g in 0..categories {
            let mut prev = f64::INFINITY;
            for snap in &snapshots {
                let width = row_width(&snap.groups[g]);
                prop_assert!(width <= prev + 1e-9, "group {g}");
                prev = width;
            }
        }

        // Snapshot metadata is coherent: merged counts increase and
        // only the last snapshot is flagged final.
        let mut prev_merged = 0;
        for (i, snap) in snapshots.iter().enumerate() {
            prop_assert!(snap.shards_merged > prev_merged);
            prop_assert!(snap.shards_merged <= snap.shards_total);
            prop_assert_eq!(snap.last, i == snapshots.len() - 1);
            prop_assert_eq!(snap.groups.len(), categories);
            prev_merged = snap.shards_merged;
        }
    }

    /// Early stop: returning `false` from the publish callback after
    /// the first snapshot yields exactly that snapshot's groups.
    #[test]
    fn stopping_the_stream_returns_the_last_offered_snapshot(
        (noise, categories, shards) in table_params(),
    ) {
        let table = build_table(&noise, categories);
        let spec = EngineSpec::sharded(
            EngineSpec::Pass(PassSpec {
                partitions: 4,
                sample_rate: 1.0,
                seed: 11,
                ..PassSpec::default()
            }),
            ShardPlan::row_range(shards),
        );
        let engine = Engine::build(&table, &spec).unwrap();
        let query = GroupByQuery::over(AggKind::Sum, 0, &keys(categories), 1);

        let mut seen = Vec::new();
        let groups = engine
            .estimate_group_by_progressive(&query, &mut |snap| {
                seen.push(snap);
                false
            })
            .unwrap();
        prop_assert_eq!(seen.len(), 1, "stopped after the first offer");
        prop_assert_eq!(&groups, &seen[0].groups);
    }
}
