//! Property tests for dynamic updates (Section 4.5): arbitrary interleaved
//! insert/delete sequences keep the synopsis statistically consistent —
//! node aggregates stay exact for SUM/COUNT/AVG, MIN/MAX bounds stay
//! conservative, and whole-space queries stay exact.

use proptest::prelude::*;

use pass::common::{AggKind, PassSpec, Query, Synopsis};
use pass::core::Pass;
use pass::table::Table;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: f64, value: f64 },
    DeleteEarlierInsert(usize),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            3 => ((0.0f64..1.0), (0.0f64..100.0))
                .prop_map(|(key, value)| Op::Insert { key, value }),
            1 => (0usize..64).prop_map(Op::DeleteEarlierInsert),
        ],
        1..80,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn update_sequences_keep_synopsis_consistent(ops in ops(), seed in 0u64..1000) {
        // Base data.
        let n = 500;
        let keys: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let values: Vec<f64> = (0..n).map(|i| ((i * 31) % 97) as f64).collect();
        let table = Table::one_dim(keys.clone(), values.clone()).unwrap();
        let mut pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: 8,
                sample_rate: 0.1,
                seed,
                ..PassSpec::default()
            },
        )
        .unwrap();

        // Mirror of live tuples for ground truth.
        let mut mirror: Vec<(f64, f64)> = keys.into_iter().zip(values).collect();
        let mut inserted: Vec<(f64, f64)> = Vec::new();

        for op in &ops {
            match op {
                Op::Insert { key, value } => {
                    pass.insert(&[*key], *value).unwrap();
                    mirror.push((*key, *value));
                    inserted.push((*key, *value));
                }
                Op::DeleteEarlierInsert(idx) => {
                    if inserted.is_empty() {
                        continue;
                    }
                    let (key, value) = inserted.swap_remove(idx % inserted.len());
                    pass.delete(&[key], value).unwrap();
                    let pos = mirror
                        .iter()
                        .position(|&(k, v)| k == key && v == value)
                        .expect("mirror has the tuple");
                    mirror.swap_remove(pos);
                }
            }
        }

        // Whole-space queries are answered exactly from the root.
        let truth_count = mirror.len() as f64;
        let truth_sum: f64 = mirror.iter().map(|&(_, v)| v).sum();
        let whole = |agg| Query::interval(agg, -1.0, 2.0);
        let count = pass.estimate(&whole(AggKind::Count)).unwrap();
        prop_assert!(count.exact);
        prop_assert!((count.value - truth_count).abs() < 1e-9);
        let sum = pass.estimate(&whole(AggKind::Sum)).unwrap();
        prop_assert!((sum.value - truth_sum).abs() < 1e-6 * truth_sum.abs().max(1.0));

        // Root MIN/MAX stay conservative: they bracket the live extrema.
        let root = *pass.tree().agg(pass.tree().root());
        if !mirror.is_empty() {
            let live_min = mirror.iter().map(|&(_, v)| v).fold(f64::INFINITY, f64::min);
            let live_max = mirror.iter().map(|&(_, v)| v).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(root.min <= live_min + 1e-12);
            prop_assert!(root.max >= live_max - 1e-12);
        }

        // Leaf counts still sum to the root count, and sample populations
        // track leaf counts.
        let leaf_total: u64 = pass
            .tree()
            .leaves()
            .into_iter()
            .map(|id| pass.tree().agg(id).count)
            .sum();
        prop_assert_eq!(leaf_total, root.count);
        for (li, id) in pass.tree().leaves().into_iter().enumerate() {
            prop_assert_eq!(
                pass.leaf_samples()[li].population(),
                pass.tree().agg(id).count
            );
        }
    }
}
