//! Kernel-contract property tests: the column-at-a-time scan kernels
//! (`pass::sampling::kernel`) are pinned **bit-for-bit** to the
//! row-at-a-time reference estimators (`pass::sampling::estimator`) for
//! all five aggregates, including the empty-match and AVG-undefined
//! corners, signed zeros in the data, and the 1-D sorted binary-search
//! fast path against the d-dimensional mask path.
//!
//! "Bit-for-bit" is literal: every comparison goes through `f64::to_bits`,
//! so even a `-0.0` vs `+0.0` drift (the `Iterator::sum` seed subtlety the
//! kernels replicate) fails the suite.

use proptest::prelude::*;

use pass::common::{AggKind, Query, Rect};
use pass::sampling::{estimate as reference, PointVariance, Sample, ScanScratch};
use pass::table::Table;

/// Collapse an estimate to raw bits so equality is exact, not approximate.
fn bits(pv: Option<PointVariance>) -> Option<(u64, u64, u64)> {
    pv.map(|p| (p.value.to_bits(), p.variance.to_bits(), p.k_pred))
}

/// Value pool with signed zeros, constants, and noise — the mix that
/// exercises every accumulation-order subtlety.
fn values(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0.0),
            Just(-0.0),
            Just(42.0),
            -100.0f64..100.0,
            Just(1e-9),
        ],
        n..n * 2 + 1,
    )
}

/// A query interval over predicate space, including empty-selection
/// intervals far outside the data (`[5,6]` when keys live in `[0,1]`).
fn interval() -> impl Strategy<Value = (f64, f64)> {
    prop_oneof![
        (0.0f64..1.0, 0.0f64..1.0).prop_map(|(a, b)| if a <= b { (a, b) } else { (b, a) }),
        Just((5.0, 6.0)),   // matches nothing: SUM/COUNT 0, AVG None
        Just((0.0, 1.0)),   // matches everything
        Just((-0.0, 0.25)), // signed-zero boundary
    ]
}

/// Deterministic pseudo-random predicate column in [0, 1).
fn keys(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        })
        .collect()
}

fn table_2d(vals: &[f64], seed: u64) -> Table {
    let n = vals.len();
    Table::new(
        vals.to_vec(),
        vec![keys(n, seed), keys(n, seed ^ 0xabcdef)],
        vec!["val".into(), "d0".into(), "d1".into()],
    )
    .unwrap()
}

proptest! {
    /// Multi-dimensional mask path ≡ reference, all five aggregates, with
    /// a non-trivial finite-population correction.
    #[test]
    fn kernel_matches_reference_bitwise(vals in values(4), seed in 1u64..5_000, (lo, hi) in interval()) {
        let t = table_2d(&vals, seed);
        let n = t.n_rows();
        let s = Sample::from_indices(&t, &(0..n).collect::<Vec<_>>(), 3 * n as u64).unwrap();
        let rect = Rect::new(&[(lo, hi), (0.1, 0.9)]);
        let mut scratch = ScanScratch::new();
        for agg in AggKind::ALL {
            prop_assert_eq!(
                bits(scratch.estimate(agg, &s, &rect)),
                bits(reference(agg, &s, &rect)),
                "{} diverged from the reference", agg
            );
        }
    }

    /// 1-D sorted fast path ≡ forced mask path ≡ reference on the same
    /// sample, including samples holding `-0.0` values.
    #[test]
    fn sorted_fast_path_matches_mask_path(vals in values(3), seed in 1u64..5_000, (lo, hi) in interval()) {
        let n = vals.len();
        let mut ks = keys(n, seed);
        ks.sort_by(f64::total_cmp);
        let t = Table::one_dim(ks, vals).unwrap();
        let s = Sample::from_indices(&t, &(0..n).collect::<Vec<_>>(), 2 * n as u64).unwrap();
        prop_assert!(s.sorted_1d(), "sorted predicate column must be detected");
        let rect = Rect::interval(lo, hi);
        let mut scratch = ScanScratch::new();
        for agg in AggKind::ALL {
            let fast = bits(scratch.estimate(agg, &s, &rect));
            let masked = bits(scratch.estimate_unsorted(agg, &s, &rect));
            let refr = bits(reference(agg, &s, &rect));
            prop_assert_eq!(fast, masked, "{} fast path diverged from mask path", agg);
            prop_assert_eq!(masked, refr, "{} mask path diverged from reference", agg);
        }
    }

    /// Fused batch evaluation ≡ per-query evaluation, element-wise, across
    /// tile boundaries (batch > one 64-query tile).
    #[test]
    fn batch_matches_singles_across_tiles(vals in values(4), seed in 1u64..5_000) {
        let t = table_2d(&vals, seed);
        let n = t.n_rows();
        let s = Sample::from_indices(&t, &(0..n).collect::<Vec<_>>(), n as u64).unwrap();
        let queries: Vec<Query> = (0..70)
            .map(|i| {
                let agg = AggKind::ALL[i % AggKind::ALL.len()];
                let lo = (i as f64 / 100.0) % 1.0;
                Query::new(agg, Rect::new(&[(lo, lo + 0.4), (0.0, 0.8)]))
            })
            .collect();
        let mut scratch = ScanScratch::new();
        let mut batch = Vec::new();
        scratch.estimate_batch(&s, &queries, &mut batch);
        prop_assert_eq!(batch.len(), queries.len());
        for (q, b) in queries.iter().zip(batch) {
            prop_assert_eq!(
                bits(b),
                bits(scratch.estimate(q.agg, &s, &q.rect)),
                "batch diverged for {}", q.agg
            );
        }
    }
}

/// The empty-sample corner stays pinned: SUM/COUNT answer `0 ± 0`,
/// AVG/MIN/MAX are undefined — on every kernel entry point.
#[test]
fn empty_sample_corner_is_pinned() {
    let t = Table::one_dim(vec![0.5], vec![1.0]).unwrap();
    let s = Sample::from_indices(&t, &[], 10).unwrap();
    let rect = Rect::interval(0.0, 1.0);
    let mut scratch = ScanScratch::new();
    for agg in AggKind::ALL {
        assert_eq!(
            bits(scratch.estimate(agg, &s, &rect)),
            bits(reference(agg, &s, &rect)),
            "{agg} empty-sample contract"
        );
    }
    let queries: Vec<Query> = AggKind::ALL
        .into_iter()
        .map(|agg| Query::interval(agg, 0.0, 1.0))
        .collect();
    let mut batch = Vec::new();
    scratch.estimate_batch(&s, &queries, &mut batch);
    for (q, b) in queries.iter().zip(batch) {
        assert_eq!(bits(b), bits(reference(q.agg, &s, &q.rect)));
    }
}
