//! The serving-layer contract (`pass::Serve`), pinned end to end:
//!
//! 1. **Fidelity** — served answers are bit-identical to direct
//!    `Session::estimate` calls for every engine in
//!    `Engine::standard_suite`, errors included. The serving tier adds
//!    queueing, coalescing, and scheduling; it must never change an
//!    answer.
//! 2. **Admission control** — the bounded queue rejects *exactly* beyond
//!    capacity, and rejected submissions never block or execute.
//! 3. **Deadlines** — a request whose deadline passes while queued
//!    resolves to `Expired` without the engine ever seeing it.
//! 4. **Priorities** — co-queued interactive requests complete before
//!    bulk requests, observable through ticket completion stamps.

use std::time::Duration;

use pass::common::{AggKind, Query};
use pass::table::datasets::uniform;
use pass::{Engine, EngineSpec, Serve, ServeConfig, ServeOutcome, Session, SubmitOptions, Ticket};

fn suite_queries() -> Vec<Query> {
    let aggs = [
        AggKind::Sum,
        AggKind::Count,
        AggKind::Avg,
        AggKind::Min,
        AggKind::Max,
    ];
    let mut queries = Vec::new();
    for (i, agg) in aggs.iter().enumerate() {
        for j in 0..6 {
            let lo = (i * 6 + j) as f64 / 40.0;
            queries.push(Query::interval(*agg, lo, (lo + 0.3).min(1.0)));
        }
        // A degenerate sliver too: some engines answer these with errors,
        // and served errors must match direct errors.
        queries.push(Query::interval(*agg, 0.9999, 0.99995));
    }
    queries
}

/// Served results are bit-identical to direct `Session::estimate` for
/// the whole standard suite. The served session and the direct session
/// are **separate builds** from identical specs, so the comparison pins
/// the serving path itself, not a shared cache.
#[test]
fn served_answers_are_bit_identical_to_direct_estimates_for_the_standard_suite() {
    let queries = suite_queries();
    for spec in Engine::standard_suite(16, 400, 3) {
        let mut direct = Session::new(uniform(8_000, 11));
        direct.add_engine("engine", &spec).unwrap();
        let mut served = Session::new(uniform(8_000, 11));
        served.add_engine("engine", &spec).unwrap();
        let serve = served
            .serve("engine", ServeConfig::new().with_workers(2))
            .unwrap();

        // Mixed single and batched submissions.
        let singles: Vec<Ticket> = queries.iter().map(|q| serve.submit(q)).collect();
        let batch = serve.submit_batch(&queries);

        for (query, ticket) in queries.iter().zip(&singles) {
            let got = ticket.wait().results().unwrap();
            assert_eq!(
                got[0],
                direct.estimate("engine", query),
                "single {query:?} on {spec:?}"
            );
        }
        let got = batch.wait().results().unwrap();
        assert_eq!(got.len(), queries.len());
        for (query, result) in queries.iter().zip(&got) {
            assert_eq!(
                *result,
                direct.estimate("engine", query),
                "batched {query:?} on {spec:?}"
            );
        }
        let stats = serve.shutdown();
        assert_eq!(stats.accepted, queries.len() as u64 + 1);
        assert_eq!(stats.completed, queries.len() as u64 + 1);
        assert_eq!((stats.rejected, stats.expired), (0, 0));
    }
}

fn paused_single_worker(session: &Session, depth: usize) -> Serve {
    session
        .serve(
            "pass",
            ServeConfig::new()
                .with_workers(1)
                .with_queue_depth(depth)
                .paused(),
        )
        .unwrap()
}

fn pass_session() -> Session {
    let mut s = Session::new(uniform(5_000, 21));
    s.add_engine("pass", &EngineSpec::pass()).unwrap();
    s
}

/// The queue admits exactly `queue_depth` requests; the next is rejected
/// synchronously, and draining one slot re-admits exactly one.
#[test]
fn queue_rejects_exactly_beyond_capacity() {
    let session = pass_session();
    let depth = 4;
    let serve = paused_single_worker(&session, depth);
    let q = Query::interval(AggKind::Sum, 0.2, 0.8);

    let accepted: Vec<Ticket> = (0..depth).map(|_| serve.submit(&q)).collect();
    for t in &accepted {
        assert_eq!(t.poll(), None, "accepted requests are pending, not shed");
    }
    // Requests depth+1 .. depth+3 are all rejected — immediately, in both
    // priority classes.
    for _ in 0..3 {
        assert_eq!(serve.submit(&q).poll(), Some(ServeOutcome::Rejected));
        assert_eq!(
            serve
                .submit_with(std::slice::from_ref(&q), &SubmitOptions::bulk())
                .poll(),
            Some(ServeOutcome::Rejected)
        );
    }
    let stats = serve.stats();
    assert_eq!(stats.accepted, depth as u64);
    assert_eq!(stats.rejected, 6);
    assert_eq!(stats.queue_high_water, depth);
    assert_eq!(stats.queue_capacity, depth);

    // Execution drains the queue and re-opens admission.
    serve.resume();
    for t in accepted {
        assert!(t.wait().is_done());
    }
    assert!(serve.submit(&q).wait().is_done());
    let stats = serve.stats();
    assert_eq!((stats.accepted, stats.rejected), (depth as u64 + 1, 6));
}

/// An expired-deadline request resolves to `Expired` and the engine
/// never executes it — observable through the session's per-engine
/// cache counters, which every executed query must touch.
#[test]
fn expired_requests_resolve_without_executing() {
    let session = pass_session();
    let serve = paused_single_worker(&session, 16);
    let q = Query::interval(AggKind::Sum, 0.3, 0.7);

    let doomed = serve.submit_with(
        std::slice::from_ref(&q),
        &SubmitOptions::interactive().with_deadline(Duration::ZERO),
    );
    let alive = serve.submit_with(
        std::slice::from_ref(&q),
        &SubmitOptions::interactive().with_deadline(Duration::from_secs(300)),
    );
    let before = session.cache_stats("pass").unwrap();
    serve.resume();

    assert_eq!(doomed.wait(), ServeOutcome::Expired);
    assert_eq!(doomed.completion_index(), None);
    assert!(alive.wait().is_done(), "a live deadline executes normally");

    let delta = session.cache_stats("pass").unwrap().since(&before);
    assert_eq!(
        delta.hits + delta.misses,
        1,
        "exactly one query (the live one) reached the engine path"
    );
    let stats = serve.shutdown();
    assert_eq!(stats.expired, 1);
    assert_eq!(stats.completed, 1);
}

/// Interactive requests overtake co-queued bulk requests: with both
/// classes queued behind a paused worker, every interactive request
/// carries a smaller completion stamp than every bulk request.
#[test]
fn interactive_requests_complete_before_co_queued_bulk() {
    let session = pass_session();
    let serve = paused_single_worker(&session, 64);

    // Bulk first — FIFO alone would finish these first.
    let bulk: Vec<Ticket> = (0..6)
        .map(|i| {
            serve.submit_with(
                &[Query::interval(AggKind::Sum, i as f64 / 10.0, 0.9)],
                &SubmitOptions::bulk(),
            )
        })
        .collect();
    let interactive: Vec<Ticket> = (0..6)
        .map(|i| {
            serve.submit_with(
                &[Query::interval(AggKind::Count, i as f64 / 10.0, 0.9)],
                &SubmitOptions::interactive(),
            )
        })
        .collect();
    serve.resume();

    let interactive_seq: Vec<u64> = interactive
        .iter()
        .map(|t| {
            assert!(t.wait().is_done());
            t.completion_index().unwrap()
        })
        .collect();
    let bulk_seq: Vec<u64> = bulk
        .iter()
        .map(|t| {
            assert!(t.wait().is_done());
            t.completion_index().unwrap()
        })
        .collect();
    let max_interactive = interactive_seq.iter().max().unwrap();
    let min_bulk = bulk_seq.iter().min().unwrap();
    assert!(
        max_interactive < min_bulk,
        "interactive stamps {interactive_seq:?} must all precede bulk stamps {bulk_seq:?}"
    );
}

/// Saturating a tiny queue from many client threads: every submission
/// resolves (Done or Rejected — never hangs), accepted ones carry
/// correct answers, and the books balance.
#[test]
fn concurrent_clients_against_a_saturated_queue_never_hang() {
    let session = pass_session();
    let serve = session
        .serve(
            "pass",
            ServeConfig::new().with_workers(2).with_queue_depth(8),
        )
        .unwrap();
    let expected = {
        let q = Query::interval(AggKind::Sum, 0.25, 0.75);
        session.estimate("pass", &q).unwrap().value
    };
    let done = std::sync::atomic::AtomicU64::new(0);
    let shed = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|s| {
        for _ in 0..8 {
            let serve = &serve;
            let done = &done;
            let shed = &shed;
            s.spawn(move || {
                for _ in 0..50 {
                    let ticket = serve.submit(&Query::interval(AggKind::Sum, 0.25, 0.75));
                    match ticket.wait() {
                        ServeOutcome::Done(results) => {
                            assert_eq!(results[0].as_ref().unwrap().value, expected);
                            done.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        ServeOutcome::Rejected => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        other => panic!("unexpected outcome {other:?}"),
                    }
                }
            });
        }
    });
    let stats = serve.shutdown();
    let (done, shed) = (
        done.load(std::sync::atomic::Ordering::Relaxed),
        shed.load(std::sync::atomic::Ordering::Relaxed),
    );
    assert_eq!(done + shed, 400);
    assert_eq!(stats.completed, done);
    assert_eq!(stats.rejected, shed);
    assert_eq!(stats.accepted, done);
    assert!(stats.queue_high_water <= 8);
}
