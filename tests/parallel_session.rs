//! The concurrency contract: parallel execution and the per-session query
//! cache must be invisible in results — only in wall clock and counters.
//!
//! * `estimate_many_parallel` is element-wise **bit-identical** to the
//!   sequential `estimate_many` for every engine in the registry's
//!   standard suite, at every pool width;
//! * a second identical workload pass through a `Session` is answered
//!   entirely from the cache, with estimates identical to the first pass;
//! * `SessionHandle` clones serving concurrently agree with the session.

use pass::common::{AggKind, Estimate, Query, Result, ThreadPool};
use pass::table::datasets::uniform;
use pass::table::SortedTable;
use pass::workload::random_queries;
use pass::{Engine, Session};

/// A mixed-aggregate workload exercising covered, partial, and disjoint
/// frontiers.
fn workload(n: usize) -> Vec<Query> {
    (0..n)
        .map(|i| {
            let lo = (i % 90) as f64 / 100.0;
            let agg = AggKind::ALL[i % AggKind::ALL.len()];
            Query::interval(agg, lo, lo + 0.05 + (i % 7) as f64 * 0.1)
        })
        .collect()
}

fn assert_identical(name: &str, threads: usize, a: &[Result<Estimate>], b: &[Result<Estimate>]) {
    assert_eq!(a.len(), b.len(), "{name} at {threads} threads");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        match (x, y) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.value, y.value, "{name} t{threads} q{i}: value");
                assert_eq!(x.ci_half, y.ci_half, "{name} t{threads} q{i}: ci");
                assert_eq!(x.exact, y.exact, "{name} t{threads} q{i}: exact");
                assert_eq!(
                    x.hard_bounds, y.hard_bounds,
                    "{name} t{threads} q{i}: bounds"
                );
                assert_eq!(
                    x.tuples_processed, y.tuples_processed,
                    "{name} t{threads} q{i}: accounting"
                );
            }
            (Err(x), Err(y)) => assert_eq!(x, y, "{name} t{threads} q{i}"),
            (x, y) => panic!("{name} t{threads} q{i}: {x:?} vs {y:?}"),
        }
    }
}

/// Parallel determinism across the whole standard suite: sharding a batch
/// over worker threads must not change a single bit of any answer, for
/// any engine, at any pool width.
#[test]
fn parallel_is_bit_identical_to_sequential_for_the_standard_suite() {
    let table = uniform(20_000, 40);
    let queries = workload(256);
    for spec in Engine::standard_suite(16, 800, 41) {
        let engine = Engine::build(&table, &spec).unwrap();
        let sequential = engine.estimate_many(&queries);
        for threads in [1, 2, 3, 4, 8] {
            let pool = ThreadPool::new(threads);
            let parallel = engine.estimate_many_parallel(&queries, &pool);
            assert_identical(engine.name(), threads, &sequential, &parallel);
        }
    }
}

/// A second identical workload pass through the session reports 100%
/// cache hits and byte-identical summary metrics.
#[test]
fn second_workload_pass_hits_the_cache_completely() {
    let table = uniform(15_000, 42);
    let sorted = SortedTable::from_table(&table, 0);
    let queries = random_queries(&sorted, 120, AggKind::Sum, 400, 43);
    let mut session = Session::new(table);
    for (i, spec) in Engine::standard_suite(16, 800, 44).into_iter().enumerate() {
        session.add_engine(format!("e{i}"), &spec).unwrap();
    }
    for name in session
        .engine_names()
        .iter()
        .map(|n| n.to_string())
        .collect::<Vec<_>>()
    {
        let (first, first_outcomes) = session.run_workload(&name, &queries).unwrap();
        assert_eq!(first.cache_hits, 0, "{name}: cold cache");
        assert_eq!(first.cache_misses as usize, queries.len(), "{name}");
        let (second, second_outcomes) = session.run_workload(&name, &queries).unwrap();
        assert_eq!(
            second.cache_hits as usize,
            queries.len(),
            "{name}: 100% hits"
        );
        assert_eq!(second.cache_misses, 0, "{name}");
        assert_eq!(
            first.median_relative_error, second.median_relative_error,
            "{name}: cached metrics identical"
        );
        assert_eq!(first.failures, second.failures, "{name}");
        for (a, b) in first_outcomes.iter().zip(&second_outcomes) {
            assert_eq!(a.estimate, b.estimate, "{name}: cached estimate identical");
        }
    }
}

/// The parallel workload runner agrees with the sequential one on every
/// error metric through the session facade (cold caches on both sides).
#[test]
fn parallel_workload_runner_matches_sequential_metrics() {
    let queries = workload(200);
    let build = || {
        let mut s = Session::new(uniform(15_000, 45));
        s.add_engine("pass", &pass::EngineSpec::pass()).unwrap();
        s
    };
    let (sequential, _) = build().run_workload_batched("pass", &queries).unwrap();
    let pool = ThreadPool::new(4);
    let (parallel, _) = build()
        .run_workload_parallel("pass", &queries, &pool)
        .unwrap();
    assert_eq!(
        sequential.median_relative_error,
        parallel.median_relative_error
    );
    assert_eq!(sequential.median_ci_ratio, parallel.median_ci_ratio);
    assert_eq!(sequential.failures, parallel.failures);
    assert_eq!(sequential.queries, parallel.queries);
}

/// Handles cloned from one session answer concurrently and identically,
/// sharing one cache.
#[test]
fn concurrent_handles_agree_and_share_the_cache() {
    let mut session = Session::new(uniform(10_000, 46));
    session
        .add_engine("pass", &pass::EngineSpec::pass())
        .unwrap();
    let queries = workload(64);
    let expected: Vec<Result<Estimate>> = session.estimate_many("pass", &queries).unwrap();
    let handle = session.handle("pass").unwrap();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let worker = handle.clone();
            let queries = &queries;
            let expected = &expected;
            scope.spawn(move || {
                let got = worker.estimate_many(queries);
                assert_identical("handle", 4, expected, &got);
            });
        }
    });
    let stats = handle.cache_stats();
    assert_eq!(stats.misses as usize, queries.len(), "one cold pass");
    assert_eq!(
        stats.hits as usize,
        4 * queries.len(),
        "all handle passes hit"
    );
}
