//! Property-based tests (proptest) on the core invariants:
//!
//! * hard bounds always contain the ground truth, for every aggregate and
//!   any data/partitioning/query;
//! * MCF frontiers partition the relevant rows exactly;
//! * the DP objective never loses to equal-depth partitioning;
//! * prefix-sum range statistics match naive recomputation;
//! * join builds and estimates over arbitrary two-table schemas never
//!   panic — every refusal is a typed error — and an exhaustive
//!   fact-side sample answers whole-space COUNT exactly.

use proptest::prelude::*;

use pass::common::{
    AggKind, EngineSpec, JoinSpec, PassError, PassSpec, PrefixSums, Query, Rect, Synopsis,
};
use pass::core::{mcf, PartitionStrategy, Pass};
use pass::partition::maxvar::{Exhaustive, MaxVarOracle};
use pass::partition::{Adp, EqualDepth, Partitioner1D, VarianceOracle};
use pass::table::{SortedTable, Table};
use pass::Engine;

/// Strategy: a small table with clustered values (mix of constant runs and
/// noise) plus a query interval grounded near data keys.
fn table_and_query() -> impl Strategy<Value = (Vec<f64>, f64, f64)> {
    (
        prop::collection::vec(
            prop_oneof![Just(0.0), 1.0f64..100.0, -50.0f64..-1.0, Just(42.0)],
            8..200,
        ),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(values, a, b)| {
            let n = values.len() as f64;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            (values, lo * n, hi * n)
        })
}

fn build_table(values: &[f64]) -> Table {
    let keys: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
    Table::one_dim(keys, values.to_vec()).unwrap()
}

/// Strategy: a two-table join instance. The dimension side has distinct
/// integer keys (possibly **zero** of them — the empty dimension side is
/// a valid spec) and 0–2 derived attribute columns; the fact side's FK
/// column mixes matching keys (index 0 over-weighted, so multiplicity is
/// skewed), dangling keys outside the dimension's key set, and a
/// fact-side sample budget `k` that may exceed the population.
#[allow(clippy::type_complexity)]
fn join_instance() -> impl Strategy<Value = (Table, JoinSpec)> {
    (
        0usize..10,                         // dimension rows (0 = empty side)
        -20i32..20,                         // first key
        prop::collection::vec(1i32..4, 10), // irregular key spacing
        0usize..3,                          // attribute columns
        prop::collection::vec(
            (
                prop_oneof![3 => Just(0usize), 2 => 0usize..32],
                -5.0f64..5.0,
                0u32..4, // 0 ⇒ dangling FK
            ),
            1..120,
        ),
        1usize..200,
    )
        .prop_map(|(dim_n, first, gaps, attr_cols, fact_rows, k)| {
            let mut dim_keys = Vec::with_capacity(dim_n);
            let mut key = f64::from(first);
            for gap in gaps.iter().take(dim_n) {
                dim_keys.push(key);
                key += f64::from(*gap);
            }
            let dim_attrs: Vec<Vec<f64>> = (0..attr_cols)
                .map(|c| {
                    dim_keys
                        .iter()
                        .map(|&key| key * (c + 1) as f64 - 0.5)
                        .collect()
                })
                .collect();
            let mut values = Vec::with_capacity(fact_rows.len());
            let mut fks = Vec::with_capacity(fact_rows.len());
            for (idx, value, roll) in fact_rows {
                values.push(value);
                fks.push(if roll == 0 || dim_keys.is_empty() {
                    1_000.0 + idx as f64 // outside every generated key set
                } else {
                    dim_keys[idx % dim_keys.len()]
                });
            }
            let fact = Table::new(values, vec![fks], vec!["v".into(), "fk".into()]).unwrap();
            (fact, JoinSpec::new(0, dim_keys, dim_attrs, k))
        })
}

/// Exact matched-row count of the join by nested loop.
fn matched_rows(fact: &Table, spec: &JoinSpec) -> usize {
    (0..fact.n_rows())
        .filter(|&i| {
            let key = fact.predicate(spec.fk_dim, i);
            spec.dim_keys.contains(&key)
        })
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hard bounds are 100%-confidence intervals: they must contain the
    /// exact answer for every aggregate, partitioning, and query.
    #[test]
    fn hard_bounds_always_contain_truth((values, lo, hi) in table_and_query(), k in 2usize..12) {
        let table = build_table(&values);
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: k,
                sample_rate: 0.2,
                seed: 1,
                ..PassSpec::default()
            },
        )
        .unwrap();
        for agg in AggKind::ALL {
            let q = Query::new(agg, Rect::interval(lo, hi));
            let truth = table.ground_truth(&q);
            let est = pass.estimate(&q);
            match (est, truth) {
                (Ok(e), Some(t)) => {
                    if let Some((lb, ub)) = e.hard_bounds {
                        prop_assert!(
                            lb - 1e-6 <= t && t <= ub + 1e-6,
                            "{agg}: truth {t} outside [{lb}, {ub}]"
                        );
                    }
                }
                // AVG/MIN/MAX over an empty selection may error; SUM/COUNT
                // must not.
                (Err(_), Some(_)) => {
                    prop_assert!(matches!(agg, AggKind::Avg | AggKind::Min | AggKind::Max));
                }
                _ => {}
            }
        }
    }

    /// The MCF frontier covers exactly the rows of intersecting partitions:
    /// covered + partial populations equal the total population of leaves
    /// whose key range intersects the query.
    #[test]
    fn mcf_frontier_partitions_relevant_rows((values, lo, hi) in table_and_query(), k in 2usize..10) {
        let table = build_table(&values);
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: k,
                sample_rate: 0.5,
                strategy: PartitionStrategy::EqualDepth,
                seed: 2,
                ..PassSpec::default()
            },
        )
        .unwrap();
        let tree = pass.tree();
        let q = Query::interval(AggKind::Sum, lo, hi);
        let frontier = mcf(tree, &q, false);
        let frontier_pop = frontier.relevant_population(tree);
        let expected: u64 = tree
            .leaves()
            .into_iter()
            .filter(|&id| tree.rect_lo(id, 0) <= hi && tree.rect_hi(id, 0) >= lo)
            .map(|id| tree.agg(id).count)
            .sum();
        prop_assert_eq!(frontier_pop, expected);
    }

    /// ADP's worst-partition variance objective never loses to equal-depth
    /// partitioning when both optimize over the full data.
    #[test]
    fn adp_objective_never_worse_than_equal_depth(values in prop::collection::vec(-100.0f64..100.0, 16..120), k in 2usize..8) {
        let keys: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let sorted = SortedTable::from_sorted(keys, values);
        let adp = Adp::new(AggKind::Sum)
            .with_samples(sorted.len())
            .partition(&sorted, k)
            .unwrap();
        let eq = EqualDepth.partition(&sorted, k).unwrap();
        let oracle = Exhaustive::new(VarianceOracle::new(sorted.prefix(), AggKind::Sum), 1);
        let objective = |p: &pass::partition::Partitioning1D| {
            p.ranges()
                .into_iter()
                .map(|r| oracle.max_variance(r.start, r.end))
                .fold(0.0f64, f64::max)
        };
        // The DP uses the ¼-approximate median-split oracle, so allow the
        // Lemma A.3/A.5 slack of 4× in the exhaustive objective.
        prop_assert!(objective(&adp) <= 4.0 * objective(&eq) + 1e-9);
    }

    /// Prefix sums agree with naive recomputation on random ranges.
    #[test]
    fn prefix_sums_match_naive(values in prop::collection::vec(-1e6f64..1e6, 1..300), split in 0.0f64..1.0) {
        let p = PrefixSums::build(&values);
        let n = values.len();
        let mid = ((n as f64) * split) as usize;
        let naive_sum: f64 = values[..mid].iter().sum();
        let naive_sq: f64 = values[..mid].iter().map(|v| v * v).sum();
        prop_assert!((p.range_sum(0, mid) - naive_sum).abs() <= 1e-6 * naive_sum.abs().max(1.0));
        prop_assert!((p.range_sum_sq(0, mid) - naive_sq).abs() <= 1e-6 * naive_sq.abs().max(1.0));
    }

    /// Join builds and estimates never panic on arbitrary two-table
    /// schemas — dangling keys, skewed multiplicity, empty dimension
    /// sides, over-large budgets. Every refusal is a typed `PassError`:
    /// SUM/COUNT always answer (finite value, non-negative finite CI),
    /// AVG may refuse an empty selection, MIN/MAX are always refused.
    #[test]
    fn join_estimates_never_panic_and_errors_are_typed(
        (fact, spec) in join_instance(),
        lo in -25.0f64..25.0,
        width in 0.0f64..30.0,
    ) {
        let engine = match Engine::build(&fact, &EngineSpec::join(spec.clone())) {
            Ok(engine) => engine,
            Err(e) => {
                prop_assert!(
                    matches!(e, PassError::InvalidParameter(_, _) | PassError::EmptyInput(_)),
                    "untyped build refusal: {e:?}"
                );
                continue;
            }
        };
        prop_assert_eq!(engine.dims(), 1 + spec.attr_dims());
        // Constrain the FK dimension, leave the attributes wide open.
        let mut bounds = vec![(lo, lo + width)];
        bounds.extend(vec![(-1e3, 1e3); spec.attr_dims()]);
        let rect = Rect::new(&bounds);
        for agg in AggKind::ALL {
            match engine.estimate(&Query::new(agg, rect.clone())) {
                Ok(e) => {
                    prop_assert!(!matches!(agg, AggKind::Min | AggKind::Max), "{agg} must refuse");
                    prop_assert!(e.value.is_finite(), "{agg}: {}", e.value);
                    prop_assert!(e.ci_half.is_finite() && e.ci_half >= 0.0, "{agg}: {}", e.ci_half);
                }
                Err(PassError::EmptyInput(_)) => prop_assert!(
                    matches!(agg, AggKind::Avg),
                    "{agg} must answer a non-empty joined sample"
                ),
                Err(PassError::InvalidParameter("agg", _)) => {
                    prop_assert!(matches!(agg, AggKind::Min | AggKind::Max));
                }
                Err(other) => prop_assert!(false, "untyped estimate refusal: {other:?}"),
            }
        }
    }

    /// With an exhaustive fact-side sample (k ≥ population), whole-space
    /// COUNT is the exact inner-join match count — the HT estimator
    /// degenerates to the truth, dangling rows excluded.
    #[test]
    fn exhaustive_join_sample_counts_matches_exactly((fact, spec) in join_instance()) {
        let spec = JoinSpec { k: fact.n_rows(), ..spec };
        let engine = Engine::build(&fact, &EngineSpec::join(spec.clone())).unwrap();
        let bounds = vec![(f64::NEG_INFINITY, f64::INFINITY); 1 + spec.attr_dims()];
        let q = Query::new(AggKind::Count, Rect::new(&bounds));
        let truth = matched_rows(&fact, &spec) as f64;
        match engine.estimate(&q) {
            Ok(e) => {
                prop_assert!((e.value - truth).abs() <= 1e-9 * truth.max(1.0));
                prop_assert!(e.ci_half <= 1e-9 * truth.max(1.0), "exhaustive CI collapses");
            }
            // COUNT over a non-empty sample always answers.
            Err(e) => prop_assert!(false, "refused: {e:?}"),
        }
    }

    /// Estimates and CI half-widths are always finite; CI is non-negative.
    #[test]
    fn estimates_are_finite((values, lo, hi) in table_and_query()) {
        let table = build_table(&values);
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: 8,
                sample_rate: 0.3,
                seed: 3,
                ..PassSpec::default()
            },
        )
        .unwrap();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = Query::new(agg, Rect::interval(lo, hi));
            if let Ok(e) = pass.estimate(&q) {
                prop_assert!(e.value.is_finite(), "{agg}");
                prop_assert!(e.ci_half.is_finite() && e.ci_half >= 0.0, "{agg}");
            }
        }
    }
}
