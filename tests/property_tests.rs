//! Property-based tests (proptest) on the core invariants:
//!
//! * hard bounds always contain the ground truth, for every aggregate and
//!   any data/partitioning/query;
//! * MCF frontiers partition the relevant rows exactly;
//! * the DP objective never loses to equal-depth partitioning;
//! * prefix-sum range statistics match naive recomputation.

use proptest::prelude::*;

use pass::common::{AggKind, PassSpec, PrefixSums, Query, Rect, Synopsis};
use pass::core::{mcf, PartitionStrategy, Pass};
use pass::partition::maxvar::{Exhaustive, MaxVarOracle};
use pass::partition::{Adp, EqualDepth, Partitioner1D, VarianceOracle};
use pass::table::{SortedTable, Table};

/// Strategy: a small table with clustered values (mix of constant runs and
/// noise) plus a query interval grounded near data keys.
fn table_and_query() -> impl Strategy<Value = (Vec<f64>, f64, f64)> {
    (
        prop::collection::vec(
            prop_oneof![Just(0.0), 1.0f64..100.0, -50.0f64..-1.0, Just(42.0)],
            8..200,
        ),
        0.0f64..1.0,
        0.0f64..1.0,
    )
        .prop_map(|(values, a, b)| {
            let n = values.len() as f64;
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            (values, lo * n, hi * n)
        })
}

fn build_table(values: &[f64]) -> Table {
    let keys: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
    Table::one_dim(keys, values.to_vec()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hard bounds are 100%-confidence intervals: they must contain the
    /// exact answer for every aggregate, partitioning, and query.
    #[test]
    fn hard_bounds_always_contain_truth((values, lo, hi) in table_and_query(), k in 2usize..12) {
        let table = build_table(&values);
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: k,
                sample_rate: 0.2,
                seed: 1,
                ..PassSpec::default()
            },
        )
        .unwrap();
        for agg in AggKind::ALL {
            let q = Query::new(agg, Rect::interval(lo, hi));
            let truth = table.ground_truth(&q);
            let est = pass.estimate(&q);
            match (est, truth) {
                (Ok(e), Some(t)) => {
                    if let Some((lb, ub)) = e.hard_bounds {
                        prop_assert!(
                            lb - 1e-6 <= t && t <= ub + 1e-6,
                            "{agg}: truth {t} outside [{lb}, {ub}]"
                        );
                    }
                }
                // AVG/MIN/MAX over an empty selection may error; SUM/COUNT
                // must not.
                (Err(_), Some(_)) => {
                    prop_assert!(matches!(agg, AggKind::Avg | AggKind::Min | AggKind::Max));
                }
                _ => {}
            }
        }
    }

    /// The MCF frontier covers exactly the rows of intersecting partitions:
    /// covered + partial populations equal the total population of leaves
    /// whose key range intersects the query.
    #[test]
    fn mcf_frontier_partitions_relevant_rows((values, lo, hi) in table_and_query(), k in 2usize..10) {
        let table = build_table(&values);
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: k,
                sample_rate: 0.5,
                strategy: PartitionStrategy::EqualDepth,
                seed: 2,
                ..PassSpec::default()
            },
        )
        .unwrap();
        let tree = pass.tree();
        let q = Query::interval(AggKind::Sum, lo, hi);
        let frontier = mcf(tree, &q, false);
        let frontier_pop = frontier.relevant_population(tree);
        let expected: u64 = tree
            .leaves()
            .into_iter()
            .filter(|&id| tree.rect_lo(id, 0) <= hi && tree.rect_hi(id, 0) >= lo)
            .map(|id| tree.agg(id).count)
            .sum();
        prop_assert_eq!(frontier_pop, expected);
    }

    /// ADP's worst-partition variance objective never loses to equal-depth
    /// partitioning when both optimize over the full data.
    #[test]
    fn adp_objective_never_worse_than_equal_depth(values in prop::collection::vec(-100.0f64..100.0, 16..120), k in 2usize..8) {
        let keys: Vec<f64> = (0..values.len()).map(|i| i as f64).collect();
        let sorted = SortedTable::from_sorted(keys, values);
        let adp = Adp::new(AggKind::Sum)
            .with_samples(sorted.len())
            .partition(&sorted, k)
            .unwrap();
        let eq = EqualDepth.partition(&sorted, k).unwrap();
        let oracle = Exhaustive::new(VarianceOracle::new(sorted.prefix(), AggKind::Sum), 1);
        let objective = |p: &pass::partition::Partitioning1D| {
            p.ranges()
                .into_iter()
                .map(|r| oracle.max_variance(r.start, r.end))
                .fold(0.0f64, f64::max)
        };
        // The DP uses the ¼-approximate median-split oracle, so allow the
        // Lemma A.3/A.5 slack of 4× in the exhaustive objective.
        prop_assert!(objective(&adp) <= 4.0 * objective(&eq) + 1e-9);
    }

    /// Prefix sums agree with naive recomputation on random ranges.
    #[test]
    fn prefix_sums_match_naive(values in prop::collection::vec(-1e6f64..1e6, 1..300), split in 0.0f64..1.0) {
        let p = PrefixSums::build(&values);
        let n = values.len();
        let mid = ((n as f64) * split) as usize;
        let naive_sum: f64 = values[..mid].iter().sum();
        let naive_sq: f64 = values[..mid].iter().map(|v| v * v).sum();
        prop_assert!((p.range_sum(0, mid) - naive_sum).abs() <= 1e-6 * naive_sum.abs().max(1.0));
        prop_assert!((p.range_sum_sq(0, mid) - naive_sq).abs() <= 1e-6 * naive_sq.abs().max(1.0));
    }

    /// Estimates and CI half-widths are always finite; CI is non-negative.
    #[test]
    fn estimates_are_finite((values, lo, hi) in table_and_query()) {
        let table = build_table(&values);
        let pass = Pass::from_spec(
            &table,
            &PassSpec {
                partitions: 8,
                sample_rate: 0.3,
                seed: 3,
                ..PassSpec::default()
            },
        )
        .unwrap();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = Query::new(agg, Rect::interval(lo, hi));
            if let Ok(e) = pass.estimate(&q) {
                prop_assert!(e.value.is_finite(), "{agg}");
                prop_assert!(e.ci_half.is_finite() && e.ci_half >= 0.0, "{agg}");
            }
        }
    }
}
