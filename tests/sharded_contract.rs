//! Contract tests for the sharding layer: a `ShardedSynopsis` must
//! preserve the statistical contract of the engine it shards.
//!
//! The pinned guarantees, for **every** engine in the standard Section 5
//! suite (`Engine::standard_suite`):
//!
//! 1. A 1-shard row-range plan is **bit-identical** (asserted within
//!    1e-9 relative) to the unsharded engine on the standard query
//!    suite, CIs included — the merge layer adds no distortion, and the
//!    merged CI trivially contains the unsharded CI.
//! 2. For K > 1 disjoint shards, merged COUNT/SUM point estimates equal
//!    the **sum of the per-shard estimates exactly** (disjoint strata
//!    compose linearly), and the merged CI is the root-sum-square of the
//!    shard CIs — conservative in that it contains every component CI.
//! 3. `EngineSpec::Sharded` round-trips through JSON and through
//!    `Engine::build(..).spec()`.
//! 4. The batched and parallel paths of a sharded engine agree
//!    element-wise with the single-query path (the workspace-wide
//!    `Synopsis` contract).

use pass::common::{AggKind, EngineSpec, PassError, Query, ShardPlan, Synopsis, ThreadPool};
use pass::table::datasets::uniform;
use pass::table::Table;
use pass::{Engine, Session};
use pass_baselines::ShardedSynopsis;

/// The paper's comparison set at a shared budget.
fn suite() -> Vec<EngineSpec> {
    Engine::standard_suite(16, 800, 3)
}

/// Broad SUM/COUNT queries every engine can answer on every shard (the
/// "standard query suite" of the sharding contract).
fn query_suite() -> Vec<Query> {
    let mut queries = Vec::new();
    for agg in [AggKind::Sum, AggKind::Count] {
        for i in 0..8 {
            let lo = i as f64 / 10.0;
            queries.push(Query::interval(agg, lo, lo + 0.25));
        }
        queries.push(Query::interval(agg, 0.0, 1.0));
    }
    queries
}

fn assert_rel_close(a: f64, b: f64, tol: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(1e-12);
    assert!(
        (a - b).abs() <= tol * scale,
        "{what}: {a} vs {b} (rel {})",
        (a - b).abs() / scale
    );
}

/// Contract 1: one shard ≡ unsharded, CIs, bounds, and errors included.
#[test]
fn single_shard_row_range_is_identical_to_unsharded() {
    let table = uniform(20_000, 11);
    // The broad suite plus queries narrow enough that sampling engines
    // refuse (EmptyInput) — identity must hold on the error side too.
    let mut queries = query_suite();
    for agg in AggKind::ALL {
        queries.push(Query::interval(agg, 0.5 - 1e-9, 0.5 + 1e-9));
        queries.push(Query::interval(agg, 5.0, 6.0));
    }
    for spec in suite() {
        let unsharded = Engine::build(&table, &spec).unwrap();
        let sharded = Engine::build(
            &table,
            &EngineSpec::sharded(spec.clone(), ShardPlan::row_range(1)),
        )
        .unwrap();
        for q in &queries {
            match (unsharded.estimate(q), sharded.estimate(q)) {
                (Ok(a), Ok(b)) => {
                    assert_rel_close(a.value, b.value, 1e-9, unsharded.name());
                    assert_rel_close(a.ci_half, b.ci_half, 1e-9, unsharded.name());
                    assert_eq!(a.exact, b.exact, "{}", unsharded.name());
                    assert_eq!(a.hard_bounds, b.hard_bounds, "{}", unsharded.name());
                    // Containment: the merged CI covers the unsharded CI.
                    let (alo, ahi) = a.ci();
                    let (blo, bhi) = b.ci();
                    assert!(
                        blo <= alo + 1e-9 && bhi >= ahi - 1e-9,
                        "{}: merged CI [{blo}, {bhi}] must contain [{alo}, {ahi}]",
                        unsharded.name()
                    );
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "{} on {q:?}", unsharded.name()),
                (a, b) => panic!(
                    "{} on {q:?}: unsharded {a:?} vs 1-sharded {b:?}",
                    unsharded.name()
                ),
            }
        }
    }
}

/// Contract 2: merged COUNT/SUM = Σ per-shard estimates, CI = RSS of the
/// shard CIs — for every engine, at K ∈ {2, 4}.
#[test]
fn merged_count_sum_is_the_exact_sum_of_shard_estimates() {
    let table = uniform(20_000, 12);
    for spec in suite() {
        for k in [2usize, 4] {
            let plan = ShardPlan::row_range(k);
            let sharded = ShardedSynopsis::build(&table, &spec, &plan).unwrap();
            // Independently rebuild the same per-shard engines (shard i
            // gets the derived per-shard seed, shard 0 the spec verbatim).
            let shard_engines: Vec<_> = table
                .split(&plan)
                .unwrap()
                .iter()
                .enumerate()
                .map(|(i, t)| Engine::build(t, &ShardedSynopsis::shard_spec(&spec, i)).unwrap())
                .collect();
            assert_eq!(sharded.n_shards(), k);
            for q in query_suite() {
                let merged = sharded.estimate(&q).unwrap();
                let (mut value_sum, mut var_sum) = (0.0f64, 0.0f64);
                let mut each_ci = Vec::new();
                for engine in &shard_engines {
                    match engine.estimate(&q) {
                        Ok(est) => {
                            value_sum += est.value;
                            var_sum += est.ci_half * est.ci_half;
                            each_ci.push(est.ci_half);
                        }
                        // An empty shard match contributes zero.
                        Err(PassError::EmptyInput(_)) => {}
                        Err(other) => panic!("{}: {other}", engine.name()),
                    }
                }
                let name = sharded.name();
                assert_rel_close(merged.value, value_sum, 1e-9, name);
                assert_rel_close(merged.ci_half, var_sum.sqrt(), 1e-9, name);
                // Conservative: the merged CI is at least every component.
                for ci in each_ci {
                    assert!(merged.ci_half + 1e-12 >= ci, "{name}");
                }
            }
        }
    }
}

/// Contract 2, hard-bound side: when every shard provides hard bounds
/// (PASS does), the summed bounds still contain the truth.
#[test]
fn sharded_pass_hard_bounds_still_contain_the_truth() {
    let table = uniform(20_000, 13);
    let spec = suite().remove(0); // PASS, storage-matched
    for plan in [ShardPlan::row_range(4), ShardPlan::hash_dim(0, 4)] {
        let sharded = Engine::build(&table, &EngineSpec::sharded(spec.clone(), plan)).unwrap();
        for q in query_suite() {
            let est = sharded.estimate(&q).unwrap();
            let truth = table.ground_truth(&q).unwrap();
            let (lb, ub) = est.hard_bounds.expect("PASS shards all give bounds");
            assert!(
                lb - 1e-6 <= truth && truth <= ub + 1e-6,
                "{q:?}: truth {truth} outside [{lb}, {ub}]"
            );
        }
        // Whole-space COUNT is answered exactly from the shard roots and
        // the exact contributions add back to n.
        let whole = Query::interval(AggKind::Count, -1.0, 2.0);
        let est = sharded.estimate(&whole).unwrap();
        assert!(est.exact, "all-exact shard answers merge exactly");
        assert_eq!(est.value, table.n_rows() as f64);
    }
}

/// Merged estimates stay accurate: K-sharded engines track ground truth
/// on broad queries about as well as their unsharded counterparts.
#[test]
fn sharded_estimates_track_ground_truth() {
    let table = uniform(40_000, 14);
    for spec in suite() {
        for plan in [ShardPlan::row_range(4), ShardPlan::hash_dim(0, 4)] {
            let sharded =
                Engine::build(&table, &EngineSpec::sharded(spec.clone(), plan.clone())).unwrap();
            for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
                let q = Query::interval(agg, 0.1, 0.9);
                let truth = table.ground_truth(&q).unwrap();
                let est = sharded.estimate(&q).unwrap();
                let rel = (est.value - truth).abs() / truth.abs();
                assert!(
                    rel < 0.3,
                    "{} {agg} under {plan:?}: rel {rel}",
                    sharded.name()
                );
            }
        }
    }
}

/// Contract 3: `EngineSpec::Sharded` round-trips through JSON and builds.
#[test]
fn sharded_specs_round_trip_through_json_and_build() {
    let table = uniform(5_000, 15);
    for inner in suite() {
        for plan in [ShardPlan::row_range(3), ShardPlan::hash_dim(0, 5)] {
            let spec = EngineSpec::sharded(inner.clone(), plan);
            let json = spec.to_json();
            assert_eq!(
                EngineSpec::from_json(&json).unwrap(),
                spec,
                "JSON round-trip: {json}"
            );
            let engine = Engine::build(&table, &spec).unwrap();
            assert_eq!(engine.spec(), spec, "{}", engine.name());
        }
    }
    // Nested sharded specs survive too.
    let nested = EngineSpec::sharded(
        EngineSpec::sharded(EngineSpec::uniform(100), ShardPlan::row_range(2)),
        ShardPlan::row_range(2),
    );
    assert_eq!(EngineSpec::from_json(&nested.to_json()).unwrap(), nested);
}

/// Contract 4: single, batched, and parallel paths agree element-wise,
/// across every aggregate kind.
#[test]
fn sharded_batched_and_parallel_paths_are_bit_identical() {
    let table = uniform(20_000, 16);
    for inner in [
        suite().remove(0),                     // PASS
        EngineSpec::uniform(600).with_seed(3), // US
    ] {
        let sharded = ShardedSynopsis::build(&table, &inner, &ShardPlan::row_range(3)).unwrap();
        let queries: Vec<Query> = (0..120)
            .map(|i| {
                let lo = (i % 40) as f64 / 50.0;
                let agg = AggKind::ALL[i % AggKind::ALL.len()];
                Query::interval(agg, lo, lo + 0.2)
            })
            .collect();
        let single: Vec<_> = queries.iter().map(|q| sharded.estimate(q)).collect();
        let batched = sharded.estimate_many(&queries);
        for threads in [1usize, 2, 4] {
            let pool = ThreadPool::new(threads);
            let parallel = sharded.estimate_many_parallel(&queries, &pool);
            for ((s, b), p) in single.iter().zip(&batched).zip(&parallel) {
                match (s, b, p) {
                    (Ok(s), Ok(b), Ok(p)) => {
                        assert_eq!(s.value, b.value, "batched departs from single");
                        assert_eq!(s.value, p.value, "parallel departs ({threads} threads)");
                        assert_eq!(s.ci_half, b.ci_half);
                        assert_eq!(s.ci_half, p.ci_half);
                        assert_eq!(s.hard_bounds, p.hard_bounds);
                    }
                    (Err(s), Err(b), Err(p)) => {
                        assert_eq!(s, b);
                        assert_eq!(s, p);
                    }
                    other => panic!("paths disagree: {other:?}"),
                }
            }
        }
    }
}

/// Sharded engines ride the whole session stack: named registration via
/// `add_sharded_engine`, caching, handles, and workload runners.
#[test]
fn sharded_engine_through_the_session_facade() {
    let table = uniform(20_000, 17);
    let spec = suite().remove(0);
    let mut session = Session::new(table);
    session
        .add_sharded_engine("pass-sharded", &spec, &ShardPlan::row_range(4))
        .unwrap();
    session.add_engine("pass", &spec).unwrap();
    let queries = query_suite();
    // Batched through the facade ≡ single through the facade.
    let batch = session.estimate_many("pass-sharded", &queries).unwrap();
    for (q, b) in queries.iter().zip(batch) {
        assert_eq!(
            session.estimate("pass-sharded", q).unwrap().value,
            b.unwrap().value
        );
    }
    // Workload evaluation produces sane, comparable rows for both.
    let rows = session.run_workload_all(&queries);
    assert_eq!(rows.len(), 2);
    for row in &rows {
        assert!(row.median_relative_error < 0.1, "{}", row.engine);
    }
    // Storage is the sum over shards. The inner spec applies per shard
    // (each shard keeps its own sample budget and tree), so K shards
    // store roughly K× the unsharded engine — more than one, at most
    // about K + tree overhead.
    let sharded_bytes = session.engine("pass-sharded").unwrap().storage_bytes();
    let unsharded_bytes = session.engine("pass").unwrap().storage_bytes();
    assert!(sharded_bytes > unsharded_bytes);
    assert!(
        (sharded_bytes as f64) < 6.0 * unsharded_bytes as f64,
        "{sharded_bytes} vs {unsharded_bytes}"
    );
}

/// Degenerate plans: more shards than rows drops the empty shards but
/// still answers; zero shards is rejected at build.
#[test]
fn degenerate_plans_behave() {
    let tiny = Table::one_dim(vec![0.1, 0.2, 0.3], vec![1.0, 2.0, 3.0]).unwrap();
    let sharded =
        ShardedSynopsis::build(&tiny, &EngineSpec::uniform(3), &ShardPlan::row_range(8)).unwrap();
    assert_eq!(sharded.n_shards(), 3, "empty shards dropped");
    let q = Query::interval(AggKind::Sum, 0.0, 1.0);
    assert_rel_close(sharded.estimate(&q).unwrap().value, 6.0, 1e-9, "tiny sum");
    assert!(
        ShardedSynopsis::build(&tiny, &EngineSpec::uniform(3), &ShardPlan::row_range(0)).is_err()
    );
}
