//! Contract tests for the group-by surface: every engine in the
//! standard Section 5 suite must answer a [`GroupByQuery`] identically
//! through every path that can serve it.
//!
//! The pinned guarantees, for **every** engine in
//! `Engine::standard_suite`:
//!
//! 1. The direct [`Synopsis::estimate_group_by`] answer, the cached
//!    session facade ([`Session::group_by`], first call and fully
//!    cached repeat), the parallel facade
//!    ([`Session::group_by_parallel`]), and the [`SessionHandle`] path
//!    are **bit-identical** row for row — `Err` rows included.
//! 2. A 1-shard row-range sharded engine answers group-bys
//!    bit-identically to its unsharded counterpart, availability-rule
//!    errors included (mirrors `sharded_contract.rs` contract 1).
//! 3. A K-shard engine's group-by rows equal the availability rule
//!    applied to its own per-category single-query path — the sharded
//!    merge layer adds no group-by-specific distortion.
//! 4. A served **progressive** group-by that runs to completion
//!    resolves bit-identical to [`Session::group_by`], for every
//!    engine, sharded engines included, and its snapshot stream obeys
//!    the online-aggregation contract (monotone refinement is pinned in
//!    detail by `tests/groupby_progressive.rs`).
//! 5. **Empty groups are never silent zeros**: a category with no
//!    sampled evidence surfaces the stratified-availability rule as an
//!    `Err` row (sampling engines) or an answer carrying real evidence
//!    (hard bounds / exactness — PASS), never a bare `0 ± 0` that reads
//!    like a confident empty group.

use pass::common::{
    apply_group_availability, AggKind, EngineSpec, GroupByQuery, PassError, ShardPlan, Synopsis,
    ThreadPool,
};
use pass::table::Table;
use pass::{Engine, ServeConfig, Session};

/// The paper's comparison set at a shared budget.
fn suite() -> Vec<EngineSpec> {
    Engine::standard_suite(16, 800, 3)
}

/// A categorical table: 8 category codes on the predicate dimension,
/// values that differ per category (so per-group answers are distinct)
/// with a deterministic wobble (so they are not degenerate constants).
fn categorical_table() -> Table {
    let n = 8_000;
    let cat: Vec<f64> = (0..n).map(|i| (i % 8) as f64).collect();
    let values: Vec<f64> = (0..n)
        .map(|i| ((i % 8) + 1) as f64 * 5.0 + ((i / 8) % 10) as f64 * 0.25)
        .collect();
    Table::one_dim(cat, values).unwrap()
}

/// Every present category, plus one (42.0) that no row carries — the
/// availability-rule probe rides along through every path.
const CATEGORIES: [f64; 9] = [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 42.0];

fn group_query(agg: AggKind) -> GroupByQuery {
    GroupByQuery::over(agg, 0, &CATEGORIES, 1)
}

/// Contract 1: direct, cached (cold and warm), parallel, and handle
/// paths are bit-identical for every engine and aggregate.
#[test]
fn group_by_is_identical_across_direct_cached_parallel_and_handle_paths() {
    let table = categorical_table();
    let pool = ThreadPool::new(3);
    for spec in suite() {
        let raw = Engine::build(&table, &spec).unwrap();
        let mut session = Session::new(categorical_table());
        session.add_engine("e", &spec).unwrap();
        let handle = session.handle("e").unwrap();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = group_query(agg);
            let direct = raw.estimate_group_by(&q).unwrap();
            assert_eq!(direct.len(), CATEGORIES.len(), "{}", raw.name());
            let cold = session.group_by("e", &q).unwrap();
            assert_eq!(direct, cold, "{} {agg}: cached(cold) vs direct", raw.name());
            let warm = session.group_by("e", &q).unwrap();
            assert_eq!(direct, warm, "{} {agg}: cached(warm) vs direct", raw.name());
            let parallel = session.group_by_parallel("e", &q, &pool).unwrap();
            assert_eq!(direct, parallel, "{} {agg}: parallel vs direct", raw.name());
            assert_eq!(
                direct,
                handle.group_by(&q).unwrap(),
                "{} {agg}: handle vs direct",
                raw.name()
            );
        }
        // The warm passes above were fully cache-served: per-category
        // rows were keyed and reused, not recomputed.
        let stats = session.cache_stats("e").unwrap();
        assert!(stats.hits >= stats.misses, "{}: {stats:?}", raw.name());
    }
}

/// Contract 2: one shard ≡ unsharded, `Err` rows included.
#[test]
fn one_shard_group_by_is_identical_to_unsharded() {
    let table = categorical_table();
    for spec in suite() {
        let unsharded = Engine::build(&table, &spec).unwrap();
        let sharded = Engine::build(
            &table,
            &EngineSpec::sharded(spec.clone(), ShardPlan::row_range(1)),
        )
        .unwrap();
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = group_query(agg);
            let a = unsharded.estimate_group_by(&q).unwrap();
            let b = sharded.estimate_group_by(&q).unwrap();
            assert_eq!(a, b, "{} {agg}: 1-shard vs unsharded", unsharded.name());
        }
    }
}

/// Contract 3: the K-shard group-by row for a category equals the
/// availability rule applied to the sharded engine's own single-query
/// answer for that category's equality rectangle.
#[test]
fn sharded_group_by_rows_match_the_single_query_path() {
    let table = categorical_table();
    for spec in suite() {
        for k in [2usize, 4] {
            let sharded = Engine::build(
                &table,
                &EngineSpec::sharded(spec.clone(), ShardPlan::row_range(k)),
            )
            .unwrap();
            for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
                let q = group_query(agg);
                let rows = sharded.estimate_group_by(&q).unwrap();
                for row in rows {
                    let single = apply_group_availability(sharded.estimate(&q.query_for(row.key)));
                    assert_eq!(
                        row.estimate,
                        single,
                        "{} {agg} k={k} group {}",
                        sharded.name(),
                        row.key
                    );
                }
            }
        }
    }
}

/// Contract 4: served progressive group-bys (run to completion) resolve
/// bit-identical to the session facade, for every engine plus a 4-shard
/// engine whose ticket streams real intermediate snapshots.
#[test]
fn served_progressive_final_matches_the_session_answer() {
    let mut session = Session::new(categorical_table());
    let mut names: Vec<String> = Vec::new();
    for (i, spec) in suite().into_iter().enumerate() {
        let name = format!("e{i}");
        session.add_engine(&name, &spec).unwrap();
        names.push(name);
    }
    session
        .add_sharded_engine("sharded", &suite().remove(0), &ShardPlan::row_range(4))
        .unwrap();
    names.push("sharded".to_string());
    let name_refs: Vec<&str> = names.iter().map(|n| n.as_str()).collect();
    let serve = session
        .serve_multi(&name_refs, ServeConfig::new().with_workers(2))
        .unwrap();
    for name in &names {
        for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
            let q = group_query(agg);
            let ticket = serve.submit_progressive_to(name, &q).unwrap();
            let outcome = ticket.wait();
            assert!(!outcome.is_partial(), "{name} {agg}: no deadline was set");
            assert_eq!(
                outcome.groups().unwrap(),
                session.group_by(name, &q).unwrap(),
                "{name} {agg}: served progressive vs session"
            );
            // The final snapshot is flagged and matches the outcome.
            let last = ticket.latest().unwrap();
            assert!(last.last, "{name} {agg}");
            assert_eq!(last.shards_merged, last.shards_total, "{name} {agg}");
        }
    }
    // The sharded engine streamed at least one snapshot per request and
    // reported its true shard count.
    let ticket = serve
        .submit_progressive_to("sharded", &group_query(AggKind::Sum))
        .unwrap();
    ticket.wait();
    assert_eq!(ticket.latest().unwrap().shards_total, 4);
}

/// Contract 5 (regression): a category with zero sampled evidence is an
/// availability `Err`, never a silent `0 ± 0` row.
#[test]
fn empty_groups_surface_the_availability_rule_not_a_silent_zero() {
    let table = categorical_table();
    for spec in suite() {
        let engine = Engine::build(&table, &spec).unwrap();
        for agg in [AggKind::Sum, AggKind::Count] {
            let rows = engine
                .estimate_group_by(&GroupByQuery::over(agg, 0, &[42.0], 1))
                .unwrap();
            match &rows[0].estimate {
                // The availability rule: the engine admits it cannot
                // vouch for the group.
                Err(PassError::EmptyInput(_)) => {}
                Err(other) => panic!("{} {agg}: unexpected error {other}", engine.name()),
                // An Ok row must carry real evidence for "empty":
                // exactness or hard bounds — never an unqualified
                // non-exact zero with a zero-width CI.
                Ok(est) => {
                    assert!(
                        est.exact || est.hard_bounds.is_some() || est.ci_half > 0.0,
                        "{} {agg}: silent zero {est:?}",
                        engine.name()
                    );
                }
            }
        }
    }
    // The uniform-sampling engine specifically: no sampled tuple can
    // match a category absent from the table, so the row *must* be the
    // availability error (this was the silent-zero bug).
    let us = Engine::build(&table, &EngineSpec::uniform(800).with_seed(3)).unwrap();
    let rows = us
        .estimate_group_by(&GroupByQuery::over(AggKind::Sum, 0, &[42.0], 1))
        .unwrap();
    assert!(
        matches!(rows[0].estimate, Err(PassError::EmptyInput(_))),
        "US must refuse an evidence-free group, got {:?}",
        rows[0].estimate
    );
}
