//! Docs consistency: every relative markdown link in the user-facing
//! docs (README ↔ docs/ ↔ examples ↔ roadmap) must resolve to a real
//! file in the repository. CI runs this as its own job, so a renamed
//! bench, a moved guide, or a deleted example breaks the build instead
//! of silently rotting the docs map.
//!
//! Deliberately dependency-free (no regex crate): markdown links are
//! `[text](target)`, so scanning for `](` and reading to the closing
//! parenthesis finds every inline link these docs use. External links
//! (`http…`, `mailto:`) and pure in-page anchors (`#…`) are skipped;
//! fragments on relative links are stripped before the existence check.

use std::path::{Path, PathBuf};

/// The documentation set under link checking: the front door, the
/// per-PR logs, and everything in `docs/`.
fn documented_files(root: &Path) -> Vec<PathBuf> {
    let mut files = vec![
        root.join("README.md"),
        root.join("ROADMAP.md"),
        root.join("CHANGES.md"),
    ];
    let docs = root.join("docs");
    let entries = std::fs::read_dir(&docs).expect("docs/ directory exists");
    for entry in entries {
        let path = entry.expect("readable docs/ entry").path();
        if path.extension().is_some_and(|e| e == "md") {
            files.push(path);
        }
    }
    files
}

/// Every inline markdown link target in `text`, in order.
fn link_targets(text: &str) -> Vec<String> {
    let mut targets = Vec::new();
    let mut rest = text;
    while let Some(open) = rest.find("](") {
        let after = &rest[open + 2..];
        let Some(close) = after.find(')') else { break };
        targets.push(after[..close].to_string());
        rest = &after[close..];
    }
    targets
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in documented_files(root) {
        let text = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("reading {}: {e}", file.display()));
        let dir = file.parent().expect("doc files live in a directory");
        for target in link_targets(&text) {
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            // `[text](path "title")` and autolinked code spans are not
            // used in these docs; a space or backtick means the match
            // was prose, not a link target.
            if target.contains(' ') || target.contains('`') {
                continue;
            }
            let path = target.split('#').next().expect("split yields at least one");
            checked += 1;
            if !dir.join(path).exists() {
                broken.push(format!("{} → {target}", file.display()));
            }
        }
    }
    assert!(
        broken.is_empty(),
        "broken intra-repo markdown links:\n  {}",
        broken.join("\n  ")
    );
    assert!(
        checked >= 10,
        "only {checked} relative links found — the docs map should cross-link \
         README, docs/, and ROADMAP far more than that; did the scanner break?"
    );
}
