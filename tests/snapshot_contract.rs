//! The snapshot contract (`pass_common::snapshot`): saving a built engine
//! and loading it back reproduces the engine **bit-identically** —
//! `estimate`, `estimate_many`, and `estimate_group_by` answers (error
//! rows included), `spec()`, `storage_bytes`, and `update_epoch` — for
//! every standard-suite engine, sharded plans, warmed caches, served
//! paths, and mutated-then-saved PASS synopses.
//!
//! The decoder side is pinned adversarially: truncation at every byte
//! boundary, single-bit flips, trailing garbage, and length-field lies
//! must surface as the right `SnapshotError` variant — never a panic,
//! and never an allocation trusted to an unvalidated length. A golden
//! fixture in `tests/data/` pins the on-disk format across checkouts
//! (regenerate with `cargo run --example snapshot_roundtrip -- <path>`
//! only on a deliberate format bump).

use std::sync::OnceLock;

use proptest::prelude::*;

use pass::common::snapshot::{Cursor, SnapshotError, SNAPSHOT_VERSION};
use pass::common::JoinSpec;
use pass::common::{AggKind, GroupByQuery, PassError, PassSpec, Query, Synopsis};
use pass::core::Pass;
use pass::table::datasets::uniform;
use pass::table::Table;
use pass::{Engine, EngineSpec, ServeConfig, Session, ShardPlan};

/// Probe queries covering every aggregate, plus an empty-selection window
/// so error rows round-trip too (AVG/MIN/MAX over nothing is an `Err`).
fn probes() -> Vec<Query> {
    let mut qs: Vec<Query> = AggKind::ALL
        .iter()
        .flat_map(|&agg| {
            [
                Query::interval(agg, 0.1, 0.8),
                Query::interval(agg, 0.42, 0.43),
            ]
        })
        .collect();
    qs.extend(AggKind::ALL.map(|agg| Query::interval(agg, 5.0, 6.0)));
    qs
}

/// Assert `loaded` is indistinguishable from `original` on every probe
/// and every identity surface. `Estimate` equality is bitwise (NaN
/// payloads and signed zeros included), so `assert_eq!` pins exact bits.
fn assert_bit_identical(original: &dyn Synopsis, loaded: &dyn Synopsis) {
    assert_eq!(loaded.name(), original.name());
    assert_eq!(loaded.spec(), original.spec());
    assert_eq!(loaded.dims(), original.dims());
    assert_eq!(loaded.storage_bytes(), original.storage_bytes());
    assert_eq!(loaded.update_epoch(), original.update_epoch());
    let qs = probes();
    for q in &qs {
        assert_eq!(
            loaded.estimate(q),
            original.estimate(q),
            "{} diverged on {:?}",
            original.name(),
            q
        );
    }
    assert_eq!(loaded.estimate_many(&qs), original.estimate_many(&qs));
}

fn roundtrip(engine: &dyn Synopsis) -> std::sync::Arc<dyn Synopsis> {
    let mut bytes = Vec::new();
    engine.save(&mut bytes).expect("save succeeds");
    Engine::load(&bytes).expect("load succeeds")
}

#[test]
fn standard_suite_round_trips_bit_identically() {
    let table = uniform(6_000, 9);
    for spec in Engine::standard_suite(16, 600, 5) {
        let engine = Engine::build(&table, &spec).unwrap();
        let loaded = roundtrip(engine.as_ref());
        assert_bit_identical(engine.as_ref(), loaded.as_ref());
    }
}

#[test]
fn sharded_pass_round_trips_at_k2_and_k4() {
    let table = uniform(8_000, 10);
    let inner = EngineSpec::Pass(PassSpec {
        partitions: 8,
        total_samples: Some(200),
        seed: 6,
        ..PassSpec::default()
    });
    for k in [2, 4] {
        let spec = EngineSpec::sharded(inner.clone(), ShardPlan::row_range(k));
        let engine = Engine::build(&table, &spec).unwrap();
        let loaded = roundtrip(engine.as_ref());
        assert_bit_identical(engine.as_ref(), loaded.as_ref());
        assert_eq!(loaded.name(), format!("Sharded[{k}]-PASS"));
    }
}

#[test]
fn group_by_answers_round_trip() {
    let n = 6_000;
    let cat: Vec<f64> = (0..n).map(|i| (i % 5) as f64).collect();
    let vals: Vec<f64> = (0..n).map(|i| ((i % 5) + 1) as f64 * 3.0).collect();
    let table = Table::one_dim(cat, vals).unwrap();
    let gq = GroupByQuery::over(AggKind::Sum, 0, &[0.0, 1.0, 2.0, 3.0, 4.0, 9.0], 1);
    let mut specs = Engine::standard_suite(8, 400, 7);
    specs.push(EngineSpec::sharded(
        specs[0].clone(),
        ShardPlan::row_range(4),
    ));
    for spec in specs {
        let engine = Engine::build(&table, &spec).unwrap();
        let loaded = roundtrip(engine.as_ref());
        // Row-for-row, error rows (the absent 9.0 category) included.
        assert_eq!(
            loaded.estimate_group_by(&gq).unwrap(),
            engine.estimate_group_by(&gq).unwrap(),
            "{}",
            engine.name()
        );
    }
}

#[test]
fn warming_the_cache_does_not_change_the_snapshot() {
    let mut session = Session::new(uniform(4_000, 11));
    session
        .add_engine(
            "pass",
            &EngineSpec::Pass(PassSpec {
                partitions: 8,
                sample_rate: 0.05,
                seed: 3,
                ..PassSpec::default()
            }),
        )
        .unwrap();
    let mut cold = Vec::new();
    session.save_engine("pass", &mut cold).unwrap();
    for q in &probes() {
        let _ = session.estimate("pass", q);
    }
    assert!(session.cache_stats("pass").unwrap().len > 0);
    let mut warm = Vec::new();
    session.save_engine("pass", &mut warm).unwrap();
    assert_eq!(cold, warm, "the query cache must not leak into snapshots");

    // A loaded engine joins the session as a first-class citizen and
    // answers identically to the warmed original, cache and all.
    session.load_engine("reloaded", &warm).unwrap();
    for q in &probes() {
        assert_eq!(session.estimate("reloaded", q), session.estimate("pass", q));
    }
}

#[test]
fn served_answers_match_after_reload() {
    let mut session = Session::new(uniform(4_000, 12));
    session
        .add_engine(
            "pass",
            &EngineSpec::Pass(PassSpec {
                partitions: 8,
                sample_rate: 0.05,
                seed: 4,
                ..PassSpec::default()
            }),
        )
        .unwrap();
    let mut bytes = Vec::new();
    session.save_engine("pass", &mut bytes).unwrap();
    session.load_engine("warm", &bytes).unwrap();

    // The serving front-end over the *loaded* engine answers every probe
    // bit-identically to direct calls against the original.
    let serve = session.serve("warm", ServeConfig::new()).unwrap();
    for q in &probes() {
        let results = serve.submit(q).wait().results().unwrap();
        assert_eq!(results[0], session.estimate("pass", q));
    }
}

#[test]
fn mutated_pass_saves_post_mutation_state() {
    let table = uniform(3_000, 13);
    let spec = PassSpec {
        partitions: 8,
        sample_rate: 0.1,
        seed: 5,
        ..PassSpec::default()
    };
    let mut pass = Pass::from_spec(&table, &spec).unwrap();
    let q = Query::interval(AggKind::Count, 0.0, 1.0);
    let before = pass.estimate(&q).unwrap();

    // Absorb a stream of inserts and a delete; the epoch advances and
    // answers move.
    for i in 0..64 {
        pass.insert(&[0.5 + (i as f64) * 1e-4], 7.0).unwrap();
    }
    let key = [table.predicate(0, 0)];
    pass.delete(&key, table.value(0)).unwrap();
    assert!(pass.update_epoch() > 0);
    let after = pass.estimate(&q).unwrap();
    assert_ne!(before.value, after.value);

    // The snapshot captures the *mutated* engine: post-mutation answers
    // and the carried-over epoch, not a rebuild from the spec.
    let loaded = roundtrip(&pass);
    assert_bit_identical(&pass, loaded.as_ref());
    assert_eq!(loaded.estimate(&q).unwrap(), after);
}

// ---------------------------------------------------------------------------
// Join snapshots
// ---------------------------------------------------------------------------

/// A fact ⋈ dimension instance for the join snapshot tests: a 2-D fact
/// (uniform x plus an FK cycling over 8 dimension keys, some dangling)
/// and one attribute column, so the joined arity is 3.
fn join_fixture() -> (Table, EngineSpec) {
    let n = 3_000;
    let values: Vec<f64> = (0..n).map(|i| (i % 11) as f64 + 1.0).collect();
    let x: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
    let fk: Vec<f64> = (0..n)
        .map(|i| if i % 5 == 0 { -7.0 } else { (i % 8) as f64 })
        .collect();
    let fact = Table::new(
        values,
        vec![x, fk],
        vec!["v".into(), "x".into(), "fk".into()],
    )
    .unwrap();
    let dim_keys: Vec<f64> = (0..8).map(|k| k as f64).collect();
    let dim_attr: Vec<f64> = dim_keys.iter().map(|k| k * 10.0).collect();
    let spec = EngineSpec::join(JoinSpec::new(1, dim_keys, vec![dim_attr], 400)).with_seed(14);
    (fact, spec)
}

/// Join-arity probes: every aggregate over a broad joined rectangle and
/// an empty window, so error rows round-trip too.
fn join_probes() -> Vec<Query> {
    AggKind::ALL
        .iter()
        .flat_map(|&agg| {
            [
                Query::new(
                    agg,
                    pass::common::Rect::new(&[(0.1, 0.9), (-10.0, 10.0), (0.0, 80.0)]),
                ),
                Query::new(
                    agg,
                    pass::common::Rect::new(&[(0.42, 0.42 + 1e-12), (9.0, 9.5), (1e6, 1e7)]),
                ),
            ]
        })
        .collect()
}

/// Join engines — bare and sharded — round-trip bit-identically. The
/// hash index is rebuilt from the header spec rather than shipped, so
/// identity here also pins the spec-derivation rule.
#[test]
fn join_engines_round_trip_bit_identically() {
    let (fact, inner) = join_fixture();
    for spec in [
        inner.clone(),
        EngineSpec::sharded(inner, ShardPlan::row_range(3)),
    ] {
        let engine = Engine::build(&fact, &spec).unwrap();
        let loaded = roundtrip(engine.as_ref());
        assert_eq!(loaded.name(), engine.name());
        assert_eq!(loaded.spec(), engine.spec());
        assert_eq!(loaded.dims(), engine.dims());
        assert_eq!(loaded.storage_bytes(), engine.storage_bytes());
        let qs = join_probes();
        for q in &qs {
            assert_eq!(
                loaded.estimate(q),
                engine.estimate(q),
                "{} diverged on {q:?}",
                engine.name()
            );
        }
        assert_eq!(loaded.estimate_many(&qs), engine.estimate_many(&qs));
    }
}

/// One modest join snapshot, built once and shared by the adversarial
/// join tests below.
fn join_snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let (fact, spec) = join_fixture();
        let engine = Engine::build(&fact, &spec).unwrap();
        let mut bytes = Vec::new();
        engine.save(&mut bytes).unwrap();
        bytes
    })
}

/// Truncating a join snapshot at any byte boundary errors cleanly — the
/// join codec inherits the framing discipline, spec header included.
#[test]
fn join_truncation_at_every_byte_boundary_errors_cleanly() {
    let bytes = join_snapshot();
    for cut in 0..bytes.len() {
        let err = snapshot_err(&bytes[..cut]);
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::BadMagic
            ),
            "cut at {cut}/{}: unexpected {err:?}",
            bytes.len()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any single-bit flip in a join snapshot is caught: the spec header
    /// travels as a CRC'd section like everything else, so corrupting
    /// the embedded dimension table cannot slip through either.
    #[test]
    fn join_single_bit_flips_never_panic(pos in 0usize..join_snapshot().len(), bit in 0u8..8) {
        let mut bytes = join_snapshot().to_vec();
        bytes[pos] ^= 1 << bit;
        prop_assert!(Engine::load(&bytes).is_err());
    }

    /// Length-field lies in a join snapshot are contained exactly like
    /// the PASS case: rejected against the remaining input before any
    /// allocation, or caught by a checksum.
    #[test]
    fn join_length_word_fuzzing_is_contained(lie in 0u64..=u64::MAX) {
        let mut bytes = join_snapshot().to_vec();
        bytes[12..20].copy_from_slice(&lie.to_le_bytes());
        match Engine::load(&bytes) {
            Err(PassError::Snapshot(_)) => {}
            Err(other) => prop_assert!(false, "non-snapshot error {other:?}"),
            Ok(_) => prop_assert!(
                lie == u64::from_le_bytes(join_snapshot()[12..20].try_into().unwrap())
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// Golden fixture
// ---------------------------------------------------------------------------

/// Decodes the committed fixture and compares it against a fresh build of
/// the same spec over the same deterministic dataset — pinning both the
/// byte format and the build determinism it relies on. Keep the spec in
/// sync with `examples/snapshot_roundtrip.rs::golden_spec`.
#[test]
fn golden_fixture_decodes_bit_identically() {
    let bytes = std::fs::read(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/pass_v1.snap"
    ))
    .expect("golden fixture is committed");
    let loaded = Engine::load(&bytes).expect("golden fixture decodes");

    let spec = EngineSpec::Pass(PassSpec {
        partitions: 8,
        total_samples: Some(64),
        seed: 7,
        ..PassSpec::default()
    });
    let fresh = Engine::build(&uniform(2_000, 42), &spec).unwrap();
    assert_bit_identical(fresh.as_ref(), loaded.as_ref());
}

// ---------------------------------------------------------------------------
// Adversarial decoding
// ---------------------------------------------------------------------------

/// One modest PASS snapshot, built once and shared by the adversarial
/// tests (every case below decodes it or a corruption of it).
fn snapshot() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let table = uniform(1_000, 21);
        let spec = EngineSpec::Pass(PassSpec {
            partitions: 4,
            total_samples: Some(32),
            seed: 8,
            ..PassSpec::default()
        });
        let engine = Engine::build(&table, &spec).unwrap();
        let mut bytes = Vec::new();
        engine.save(&mut bytes).unwrap();
        bytes
    })
}

fn snapshot_err(bytes: &[u8]) -> SnapshotError {
    match Engine::load(bytes) {
        Err(PassError::Snapshot(err)) => err,
        Err(other) => panic!("expected a snapshot error, got {other:?}"),
        Ok(_) => panic!("corrupt snapshot decoded successfully"),
    }
}

#[test]
fn truncation_at_every_byte_boundary_errors_cleanly() {
    let bytes = snapshot();
    for cut in 0..bytes.len() {
        // Any proper prefix must fail — with a snapshot error, never a
        // panic — because the spec promises more sections than remain.
        let err = snapshot_err(&bytes[..cut]);
        assert!(
            matches!(
                err,
                SnapshotError::Truncated { .. }
                    | SnapshotError::ChecksumMismatch { .. }
                    | SnapshotError::BadMagic
            ),
            "cut at {cut}/{}: unexpected {err:?}",
            bytes.len()
        );
    }
}

#[test]
fn bad_magic_is_detected_before_anything_else() {
    let mut bytes = snapshot().to_vec();
    bytes[0] ^= 0xFF;
    assert_eq!(snapshot_err(&bytes), SnapshotError::BadMagic);
    // Shorter than the magic itself: truncation, not a magic complaint.
    assert!(matches!(
        snapshot_err(&bytes[..4]),
        SnapshotError::Truncated { .. }
    ));
}

#[test]
fn version_skew_reports_both_versions() {
    let mut bytes = snapshot().to_vec();
    bytes[8..12].copy_from_slice(&(SNAPSHOT_VERSION + 9).to_le_bytes());
    assert_eq!(
        snapshot_err(&bytes),
        SnapshotError::VersionSkew {
            found: SNAPSHOT_VERSION + 9,
            supported: SNAPSHOT_VERSION,
        }
    );
}

#[test]
fn trailing_garbage_is_rejected_with_its_size() {
    let mut bytes = snapshot().to_vec();
    bytes.extend_from_slice(&[0xAB; 7]);
    assert_eq!(
        snapshot_err(&bytes),
        SnapshotError::TrailingBytes { extra: 7 }
    );
}

#[test]
fn length_field_lies_fail_before_allocating() {
    // The first section's length lives right after magic + version. A
    // huge claim must be rejected by comparing against the remaining
    // input *before* any allocation — if the decoder trusted it, this
    // test would OOM rather than fail an assertion.
    let mut bytes = snapshot().to_vec();
    bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(matches!(
        snapshot_err(&bytes),
        SnapshotError::Truncated { .. }
    ));
    // An in-bounds lie mis-frames the section and trips its checksum.
    let mut bytes = snapshot().to_vec();
    let real = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
    bytes[12..20].copy_from_slice(&(real - 1).to_le_bytes());
    assert!(matches!(
        snapshot_err(&bytes),
        SnapshotError::ChecksumMismatch { .. } | SnapshotError::Truncated { .. }
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A single bit flip anywhere in the snapshot is always caught: the
    /// magic and version are checked directly, section payloads are
    /// checksummed, and frame lengths are validated against the
    /// remaining input. Never a panic, never a wild allocation.
    #[test]
    fn single_bit_flips_never_panic(pos in 0usize..snapshot().len(), bit in 0u8..8) {
        let mut bytes = snapshot().to_vec();
        bytes[pos] ^= 1 << bit;
        prop_assert!(Engine::load(&bytes).is_err());
    }

    /// Random truncation points (denser than the exhaustive sweep can
    /// afford on bigger snapshots) stay clean.
    #[test]
    fn random_truncation_never_panics(cut in 0usize..snapshot().len()) {
        prop_assert!(matches!(
            Engine::load(&snapshot()[..cut]),
            Err(PassError::Snapshot(_))
        ));
    }

    /// Garbage appended after the last section is reported byte-exactly.
    #[test]
    fn trailing_garbage_of_any_size_is_counted(garbage in prop::collection::vec(0u8..=255, 1..64usize)) {
        let mut bytes = snapshot().to_vec();
        let extra = garbage.len() as u64;
        bytes.extend_from_slice(&garbage);
        prop_assert_eq!(snapshot_err(&bytes), SnapshotError::TrailingBytes { extra });
    }

    /// Overwriting any section-length word with an arbitrary value never
    /// panics or over-allocates; it either mis-frames (checksum,
    /// truncation, trailing bytes) or — astronomically unlikely —
    /// reframes into a valid snapshot.
    #[test]
    fn length_word_fuzzing_is_contained(lie in 0u64..=u64::MAX) {
        let mut bytes = snapshot().to_vec();
        bytes[12..20].copy_from_slice(&lie.to_le_bytes());
        match Engine::load(&bytes) {
            Err(PassError::Snapshot(_)) => {}
            Err(other) => prop_assert!(false, "non-snapshot error {other:?}"),
            Ok(_) => prop_assert!(lie == u64::from_le_bytes(snapshot()[12..20].try_into().unwrap())),
        }
    }
}

// ---------------------------------------------------------------------------
// Float bit patterns
// ---------------------------------------------------------------------------

/// The codec stores floats as raw IEEE-754 bits: signed zeros and NaN
/// payloads must survive a round trip exactly — pinned at the primitive
/// layer, where every higher codec bottoms out.
#[test]
fn signed_zeros_and_nan_payloads_round_trip_bitwise() {
    let specials = [
        0.0f64,
        -0.0,
        f64::NAN,
        f64::from_bits(0x7FF8_DEAD_BEEF_0001), // quiet NaN, custom payload
        f64::from_bits(0xFFF8_0000_0000_0042), // negative quiet NaN
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE / 2.0, // subnormal
    ];
    let mut payload = Vec::new();
    for &v in &specials {
        pass::common::snapshot::put_f64(&mut payload, v);
    }
    let mut c = Cursor::new(&payload);
    for &v in &specials {
        let back = c.f64("special float").unwrap();
        assert_eq!(back.to_bits(), v.to_bits(), "{v:?} changed bits");
    }
    c.done("specials").unwrap();
}

/// End to end: an engine whose sample holds -0.0 and a payload-carrying
/// NaN answers bit-identically after a round trip (`Estimate` equality
/// is bitwise, so `assert_bit_identical` compares exact bits).
#[test]
fn engines_over_special_floats_round_trip() {
    let n = 256;
    let keys: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
    let mut vals: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
    vals[10] = -0.0;
    vals[20] = f64::from_bits(0x7FF8_DEAD_BEEF_0001);
    let table = Table::one_dim(keys, vals).unwrap();
    // A full-population sample makes both special rows certainly present.
    let engine = Engine::build(&table, &EngineSpec::uniform(n).with_seed(2)).unwrap();
    let loaded = roundtrip(engine.as_ref());
    for agg in AggKind::ALL {
        let q = Query::interval(agg, 0.0, 1.0);
        let (a, b) = (engine.estimate(&q), loaded.estimate(&q));
        assert_eq!(a, b, "{agg} diverged (bitwise Estimate compare)");
    }
}
