//! Contract tests: every `Synopsis` implementation honours the shared
//! behavioural contract the workload runner relies on.

use pass::baselines::{
    AqpPlusPlus, SpnSynopsis, StratifiedSynopsis, UniformSynopsis, VerdictSynopsis,
};
use pass::common::{AggKind, PassError, Query, Rect, Synopsis};
use pass::core::PassBuilder;
use pass::table::datasets::uniform;
use pass::table::Table;

fn engines(table: &Table) -> Vec<Box<dyn Synopsis>> {
    vec![
        Box::new(
            PassBuilder::new()
                .partitions(16)
                .sample_rate(0.05)
                .seed(1)
                .build(table)
                .unwrap(),
        ),
        Box::new(UniformSynopsis::build(table, 500, 1).unwrap()),
        Box::new(StratifiedSynopsis::build(table, 16, 500, 1).unwrap()),
        Box::new(AqpPlusPlus::build(table, 16, 500, 1).unwrap()),
        Box::new(VerdictSynopsis::build(table, 0.1, 1).unwrap()),
        Box::new(SpnSynopsis::build(table, 0.5, 1).unwrap()),
    ]
}

#[test]
fn names_are_nonempty_and_distinct() {
    let t = uniform(5_000, 2);
    let engines = engines(&t);
    let names: Vec<String> = engines.iter().map(|e| e.name().to_string()).collect();
    for n in &names {
        assert!(!n.is_empty());
    }
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate names: {names:?}");
}

#[test]
fn dims_and_storage_reported() {
    let t = uniform(5_000, 3);
    for e in engines(&t) {
        assert_eq!(e.dims(), 1, "{}", e.name());
        assert!(e.storage_bytes() > 0, "{}", e.name());
    }
}

#[test]
fn dimension_mismatch_is_an_error_not_a_panic() {
    let t = uniform(5_000, 4);
    let q = Query::new(AggKind::Sum, Rect::new(&[(0.0, 1.0), (0.0, 1.0)]));
    for e in engines(&t) {
        match e.estimate(&q) {
            Err(PassError::DimensionMismatch { .. }) => {}
            other => panic!("{}: expected DimensionMismatch, got {other:?}", e.name()),
        }
    }
}

#[test]
fn broad_queries_are_reasonably_accurate_everywhere() {
    let t = uniform(50_000, 5);
    let q = Query::interval(AggKind::Sum, 0.1, 0.9);
    let truth = t.ground_truth(&q).unwrap();
    for e in engines(&t) {
        let est = e.estimate(&q).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.15, "{}: rel {rel}", e.name());
    }
}

#[test]
fn count_estimates_are_never_negative() {
    let t = uniform(10_000, 6);
    for e in engines(&t) {
        for (lo, hi) in [(0.0, 1.0), (0.4999, 0.5001), (0.0, 0.001)] {
            let q = Query::interval(AggKind::Count, lo, hi);
            if let Ok(est) = e.estimate(&q) {
                assert!(est.value >= -1e-9, "{}: COUNT {}", e.name(), est.value);
            }
        }
    }
}

#[test]
fn sum_count_of_disjoint_region_is_zero_when_answerable() {
    let t = uniform(10_000, 7);
    for e in engines(&t) {
        for agg in [AggKind::Sum, AggKind::Count] {
            let q = Query::interval(agg, 5.0, 6.0); // outside [0, 1)
            // Model-based engines may legitimately refuse (Err); those that
            // answer must answer zero.
            if let Ok(est) = e.estimate(&q) {
                assert!(
                    est.value.abs() < 1e-9,
                    "{}: {agg} of empty region = {}",
                    e.name(),
                    est.value
                );
            }
        }
    }
}
