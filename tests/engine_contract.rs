//! Contract tests: every `Synopsis` implementation honours the shared
//! behavioural contract the workload runner and `Session` rely on.
//!
//! Engines are constructed exclusively through the spec-driven registry
//! (`Engine::build`), so these tests also pin the registry's surface.

use std::sync::Arc;

use pass::common::{AggKind, EngineSpec, PassError, PassSpec, Query, Rect, Synopsis};
use pass::table::datasets::uniform;
use pass::table::Table;
use pass::{Engine, Session};

/// One spec per registered engine kind (PASS + five baselines).
fn specs() -> Vec<EngineSpec> {
    vec![
        EngineSpec::Pass(PassSpec {
            partitions: 16,
            sample_rate: 0.05,
            seed: 1,
            ..PassSpec::default()
        }),
        EngineSpec::uniform(500).with_seed(1),
        EngineSpec::stratified(16, 500).with_seed(1),
        EngineSpec::aqppp(16, 500).with_seed(1),
        EngineSpec::verdict(0.1).with_seed(1),
        EngineSpec::spn(0.5).with_seed(1),
    ]
}

fn engines(table: &Table) -> Vec<Arc<dyn Synopsis>> {
    Engine::build_all(table, &specs()).expect("every registered engine builds")
}

/// The registry's standard suite is the paper's Section 5 comparison set:
/// six engines, in this order, with these display names. Docs and bench
/// tables cite the set by position and name, so drift here is a contract
/// break, not a tweak.
#[test]
fn standard_suite_order_and_names_are_pinned() {
    let specs = Engine::standard_suite(16, 400, 3);
    assert_eq!(specs.len(), 6);
    assert!(matches!(&specs[0], EngineSpec::Pass(p) if p.total_samples == Some(400)));
    assert!(matches!(specs[1], EngineSpec::Uniform { k: 400, seed: 3 }));
    assert!(matches!(
        specs[2],
        EngineSpec::Stratified {
            strata: 16,
            k: 400,
            seed: 3
        }
    ));
    assert!(matches!(
        &specs[3],
        EngineSpec::AqpPlusPlus {
            partitions: 16,
            k: 400,
            seed: 3,
            tree_dims: None
        }
    ));
    assert!(matches!(specs[4], EngineSpec::Verdict { ratio, seed: 3 } if ratio == 0.1));
    assert!(matches!(specs[5], EngineSpec::Spn { ratio, seed: 3 } if ratio == 0.5));

    let t = uniform(3_000, 4);
    let names: Vec<String> = specs
        .iter()
        .map(|s| Engine::build(&t, s).unwrap().name().to_owned())
        .collect();
    assert_eq!(
        names,
        ["PASS", "US", "ST", "AQP++", "VerdictDB-10%", "DeepDB-50%"]
    );
}

#[test]
fn names_are_nonempty_and_distinct() {
    let t = uniform(5_000, 2);
    let engines = engines(&t);
    let names: Vec<String> = engines.iter().map(|e| e.name().to_string()).collect();
    for n in &names {
        assert!(!n.is_empty());
    }
    let mut dedup = names.clone();
    dedup.sort();
    dedup.dedup();
    assert_eq!(dedup.len(), names.len(), "duplicate names: {names:?}");
}

#[test]
fn dims_and_storage_reported() {
    let t = uniform(5_000, 3);
    for e in engines(&t) {
        assert_eq!(e.dims(), 1, "{}", e.name());
        assert!(e.storage_bytes() > 0, "{}", e.name());
    }
}

#[test]
fn dimension_mismatch_is_an_error_not_a_panic() {
    let t = uniform(5_000, 4);
    let q = Query::new(AggKind::Sum, Rect::new(&[(0.0, 1.0), (0.0, 1.0)]));
    for e in engines(&t) {
        match e.estimate(&q) {
            Err(PassError::DimensionMismatch { .. }) => {}
            other => panic!("{}: expected DimensionMismatch, got {other:?}", e.name()),
        }
    }
}

#[test]
fn broad_queries_are_reasonably_accurate_everywhere() {
    let t = uniform(50_000, 5);
    let q = Query::interval(AggKind::Sum, 0.1, 0.9);
    let truth = t.ground_truth(&q).unwrap();
    for e in engines(&t) {
        let est = e.estimate(&q).unwrap();
        let rel = (est.value - truth).abs() / truth;
        assert!(rel < 0.15, "{}: rel {rel}", e.name());
    }
}

#[test]
fn count_estimates_are_never_negative() {
    let t = uniform(10_000, 6);
    for e in engines(&t) {
        for (lo, hi) in [(0.0, 1.0), (0.4999, 0.5001), (0.0, 0.001)] {
            let q = Query::interval(AggKind::Count, lo, hi);
            if let Ok(est) = e.estimate(&q) {
                assert!(est.value >= -1e-9, "{}: COUNT {}", e.name(), est.value);
            }
        }
    }
}

#[test]
fn sum_count_of_disjoint_region_is_zero_when_answerable() {
    let t = uniform(10_000, 7);
    for e in engines(&t) {
        for agg in [AggKind::Sum, AggKind::Count] {
            let q = Query::interval(agg, 5.0, 6.0); // outside [0, 1)
                                                    // Model-based engines may legitimately refuse (Err); those that
                                                    // answer must answer zero.
            if let Ok(est) = e.estimate(&q) {
                assert!(
                    est.value.abs() < 1e-9,
                    "{}: {agg} of empty region = {}",
                    e.name(),
                    est.value
                );
            }
        }
    }
}

/// The batched contract: `estimate_many` agrees element-wise with repeated
/// `estimate` for **every** engine — including PASS's shared-traversal
/// override and everything forwarded through `Box<dyn Synopsis>`.
#[test]
fn estimate_many_agrees_with_repeated_estimate_for_every_engine() {
    let t = uniform(20_000, 8);
    let queries: Vec<Query> = (0..32)
        .map(|i| {
            let lo = i as f64 / 40.0;
            let agg = [AggKind::Sum, AggKind::Count, AggKind::Avg][i % 3];
            Query::interval(agg, lo, lo + 0.25)
        })
        .collect();
    for e in engines(&t) {
        let batch = e.estimate_many(&queries);
        assert_eq!(batch.len(), queries.len(), "{}", e.name());
        for (q, batched) in queries.iter().zip(batch) {
            match (e.estimate(q), batched) {
                (Ok(single), Ok(batched)) => {
                    assert_eq!(single.value, batched.value, "{} on {q:?}", e.name());
                    assert_eq!(single.ci_half, batched.ci_half, "{}", e.name());
                    assert_eq!(single.exact, batched.exact, "{}", e.name());
                    assert_eq!(single.hard_bounds, batched.hard_bounds, "{}", e.name());
                }
                (Err(single), Err(batched)) => {
                    assert_eq!(single, batched, "{} on {q:?}", e.name())
                }
                (single, batched) => panic!(
                    "{} on {q:?}: single {single:?} vs batched {batched:?}",
                    e.name()
                ),
            }
        }
    }
}

/// The spec round-trip contract: every registry-built engine reports the
/// spec it was built from, verbatim, and the spec survives JSON.
#[test]
fn specs_round_trip_through_build_and_json() {
    let t = uniform(5_000, 9);
    for spec in specs() {
        let engine = Engine::build(&t, &spec).unwrap();
        assert_eq!(engine.spec(), spec, "{}", engine.name());
        let json = spec.to_json();
        assert_eq!(
            EngineSpec::from_json(&json).unwrap(),
            spec,
            "JSON round-trip: {json}"
        );
    }
}

/// The same engines behave identically when owned by a `Session`.
#[test]
fn session_preserves_the_contract() {
    let t = uniform(10_000, 10);
    let named: Vec<(String, EngineSpec)> = specs()
        .into_iter()
        .enumerate()
        .map(|(i, s)| (format!("e{i}"), s))
        .collect();
    let engines: Vec<(&str, EngineSpec)> =
        named.iter().map(|(n, s)| (n.as_str(), s.clone())).collect();
    let session = Session::with_engines(t, &engines).unwrap();
    let q = Query::interval(AggKind::Sum, 0.2, 0.8);
    for (name, spec) in &engines {
        assert_eq!(session.spec(name), Some(spec.clone()));
        let direct = session.engine(name).unwrap().estimate(&q).unwrap();
        let via_session = session.estimate(name, &q).unwrap();
        assert_eq!(direct.value, via_session.value);
        let batch = session
            .estimate_many(name, std::slice::from_ref(&q))
            .unwrap();
        assert_eq!(batch[0].as_ref().unwrap().value, direct.value);
    }
}
