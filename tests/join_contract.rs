//! Statistically-pinned contract for the JOIN engine family
//! (`EngineSpec::Join` → `pass_baselines::JoinSynopsis`).
//!
//! The pinned guarantees:
//!
//! 1. **Unbiasedness** — averaged over ≥64 independently seeded builds,
//!    SUM/COUNT estimates land within a small fraction of one CI
//!    half-width of the exact nested-loop join answer (the estimator
//!    mean concentrates at the truth like σ/√seeds).
//! 2. **Coverage** — the 99% CI contains the nested-loop truth in at
//!    least 95 of 100 seeded builds, same bar as the US engine.
//! 3. **Bit-identity** — single, batched, parallel, sharded-batch,
//!    cached, served, and snapshot-reloaded answers are the *same
//!    `Estimate` values* (floats compared bitwise via `Estimate`'s
//!    `PartialEq`), and a 1-shard plan reproduces the unsharded engine
//!    to 1e-9 relative.
//! 4. **Corners** — empty joins answer 0 ± 0 for SUM/COUNT and a typed
//!    `EmptyInput` for AVG; dangling FKs drop like an inner join;
//!    MIN/MAX are typed rejections on every path; zero-truth
//!    `relative_error` follows the documented 0-vs-∞ convention.

use pass::common::rng::derive_seed;
use pass::common::{
    AggKind, Aggregates, EngineSpec, Estimate, JoinSpec, PassError, Query, Rect, ShardPlan,
    Synopsis, ThreadPool,
};
use pass::table::datasets::uniform;
use pass::table::Table;
use pass::{Engine, ServeConfig, Session};
use pass_baselines::{JoinSynopsis, ShardedSynopsis};

/// A fact table (value = `(i % 13) + 1`, `x` uniform in [0, 1), FK
/// cycling over the dimension keys with every `dangle_every`-th row
/// pointed at a key the dimension side does not carry) and a dimension
/// side whose single attribute is 10× the key.
fn fixture(fact_n: usize, dim_n: usize, dangle_every: usize, k: usize) -> (Table, JoinSpec) {
    let values: Vec<f64> = (0..fact_n).map(|i| (i % 13) as f64 + 1.0).collect();
    let x: Vec<f64> = (0..fact_n).map(|i| i as f64 / fact_n as f64).collect();
    let fk: Vec<f64> = (0..fact_n)
        .map(|i| {
            if dangle_every > 0 && i % dangle_every == 0 {
                -1.0
            } else {
                (i % dim_n) as f64
            }
        })
        .collect();
    let fact = Table::new(
        values,
        vec![x, fk],
        vec!["v".into(), "x".into(), "fk".into()],
    )
    .unwrap();
    let dim_keys: Vec<f64> = (0..dim_n).map(|key| key as f64).collect();
    let dim_attr: Vec<f64> = dim_keys.iter().map(|key| key * 10.0).collect();
    (fact, JoinSpec::new(1, dim_keys, vec![dim_attr], k))
}

/// Exact join answer by nested-loop reference: for every fact row, find
/// its (unique) dimension partner, form the joined point, and aggregate
/// the fact value if the point falls inside the rectangle. Rows without
/// a partner are dropped — inner-join semantics.
fn nested_loop_truth(fact: &Table, spec: &JoinSpec, agg: AggKind, rect: &Rect) -> Option<f64> {
    let mut state = Aggregates::empty();
    for i in 0..fact.n_rows() {
        let key = fact.predicate(spec.fk_dim, i);
        let Some(row) = spec.dim_keys.iter().position(|&k| k == key) else {
            continue;
        };
        let mut point: Vec<f64> = (0..fact.dims()).map(|d| fact.predicate(d, i)).collect();
        point.extend(spec.dim_attrs.iter().map(|col| col[row]));
        if (0..rect.dims()).all(|d| rect.lo(d) <= point[d] && point[d] <= rect.hi(d)) {
            state.insert(fact.value(i));
        }
    }
    state.answer(agg)
}

/// The standard join query suite: SUM/COUNT/AVG over rectangles that
/// constrain the fact's `x`, leave the FK column unconstrained, and
/// constrain the dimension attribute — queries only the join can answer.
fn query_suite() -> Vec<Query> {
    let mut queries = Vec::new();
    for agg in [AggKind::Sum, AggKind::Count, AggKind::Avg] {
        for i in 0..6 {
            let lo = i as f64 / 10.0;
            queries.push(Query::new(
                agg,
                Rect::new(&[(lo, lo + 0.35), (-2.0, 100.0), (10.0, 120.0)]),
            ));
        }
    }
    queries
}

fn assert_rel_close(a: f64, b: f64, tol: f64, what: &str) {
    let scale = a.abs().max(b.abs()).max(1e-12);
    assert!(
        (a - b).abs() <= tol * scale,
        "{what}: {a} vs {b} (rel {})",
        (a - b).abs() / scale
    );
}

/// Contract 1: the estimator is unbiased. Averaged over 64 derived
/// seeds, SUM and COUNT estimates sit within a quarter CI half-width of
/// the nested-loop truth (the mean of 64 iid draws has σ/8 spread, so a
/// quarter half-width is a > 5σ allowance — a real bias trips it).
#[test]
fn join_estimates_are_unbiased_across_seeds() {
    let (fact, spec) = fixture(20_000, 16, 7, 1_500);
    let rect = Rect::new(&[(0.15, 0.85), (-2.0, 100.0), (20.0, 110.0)]);
    for agg in [AggKind::Sum, AggKind::Count] {
        let truth = nested_loop_truth(&fact, &spec, agg, &rect).unwrap();
        let q = Query::new(agg, rect.clone());
        let (mut est_sum, mut ci_sum) = (0.0f64, 0.0f64);
        const SEEDS: u64 = 64;
        for s in 0..SEEDS {
            let seeded = EngineSpec::Join(spec.clone()).with_seed(derive_seed(41, s));
            let est = Engine::build(&fact, &seeded).unwrap().estimate(&q).unwrap();
            est_sum += est.value;
            ci_sum += est.ci_half;
        }
        let mean = est_sum / SEEDS as f64;
        let avg_ci = ci_sum / SEEDS as f64;
        assert!(
            (mean - truth).abs() <= 0.25 * avg_ci,
            "{agg}: mean {mean} vs truth {truth} (avg ci {avg_ci})"
        );
    }
}

/// Contract 2: the 99% CI covers the nested-loop truth at least 95
/// times in 100 seeded builds — the same statistical bar the US engine
/// pins for single-table estimation.
#[test]
fn join_ci_coverage_meets_nominal() {
    let (fact, spec) = fixture(20_000, 16, 0, 1_000);
    let rect = Rect::new(&[(0.1, 0.6), (-2.0, 100.0), (0.0, 100.0)]);
    for agg in [AggKind::Sum, AggKind::Count] {
        let truth = nested_loop_truth(&fact, &spec, agg, &rect).unwrap();
        let q = Query::new(agg, rect.clone());
        let mut covered = 0;
        for seed in 0..100u64 {
            let engine =
                Engine::build(&fact, &EngineSpec::Join(spec.clone()).with_seed(seed)).unwrap();
            let est = engine.estimate(&q).unwrap();
            if (est.value - truth).abs() <= est.ci_half {
                covered += 1;
            }
        }
        assert!(covered >= 95, "{agg}: coverage {covered}/100");
    }
}

/// Contract 3a: single, batched, and parallel query paths return the
/// same `Estimate`s bit-for-bit (`Estimate`'s `PartialEq` compares the
/// floats bitwise through `==`), errors matching on the error side.
#[test]
fn single_batched_and_parallel_paths_are_bit_identical() {
    let (fact, spec) = fixture(10_000, 8, 5, 800);
    let join = Engine::build(&fact, &EngineSpec::join(spec)).unwrap();
    // The suite plus a sliver no sampled tuple hits (AVG errs there) and
    // MIN/MAX (typed rejections): identity must hold on the error side.
    let mut queries = query_suite();
    queries.push(Query::new(
        AggKind::Avg,
        Rect::new(&[(0.5, 0.5 + 1e-12), (5.0, 5.0), (1e6, 1e7)]),
    ));
    for agg in [AggKind::Min, AggKind::Max] {
        queries.push(Query::new(
            agg,
            Rect::new(&[(0.0, 1.0), (-2.0, 100.0), (0.0, 100.0)]),
        ));
    }
    let single: Vec<_> = queries.iter().map(|q| join.estimate(q)).collect();
    let batched = join.estimate_many(&queries);
    assert_eq!(single, batched, "batched departs from single");
    for threads in [1usize, 2, 4] {
        let pool = ThreadPool::new(threads);
        let parallel = join.estimate_many_parallel(&queries, &pool);
        assert_eq!(single, parallel, "parallel departs ({threads} threads)");
    }
}

/// Contract 3b: a 1-shard row-range plan reproduces the unsharded
/// engine to 1e-9 relative, and a 4-shard engine's batched path is
/// bit-identical to its own per-query path.
#[test]
fn sharded_join_matches_unsharded_and_stays_self_consistent() {
    let (fact, spec) = fixture(12_000, 8, 6, 900);
    let inner = EngineSpec::join(spec);
    let unsharded = Engine::build(&fact, &inner).unwrap();
    let one_shard = Engine::build(
        &fact,
        &EngineSpec::sharded(inner.clone(), ShardPlan::row_range(1)),
    )
    .unwrap();
    for q in query_suite() {
        match (unsharded.estimate(&q), one_shard.estimate(&q)) {
            (Ok(a), Ok(b)) => {
                assert_rel_close(a.value, b.value, 1e-9, "1-shard value");
                assert_rel_close(a.ci_half, b.ci_half, 1e-9, "1-shard ci");
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("1-shard split on {q:?}: {a:?} vs {b:?}"),
        }
    }
    let four = ShardedSynopsis::build(&fact, &inner, &ShardPlan::row_range(4)).unwrap();
    assert_eq!(four.n_shards(), 4);
    assert_eq!(four.dims(), 3, "sharded join keeps the joined arity");
    let queries = query_suite();
    let singles: Vec<_> = queries.iter().map(|q| four.estimate(q)).collect();
    assert_eq!(singles, four.estimate_many(&queries));
    // And the merged estimates still track the nested-loop truth.
    let inner_spec = match &inner {
        EngineSpec::Join(j) => j.clone(),
        _ => unreachable!(),
    };
    for q in &queries {
        if let Ok(est) = four.estimate(q) {
            if let Some(truth) = nested_loop_truth(&fact, &inner_spec, q.agg, &q.rect) {
                assert_rel_close(est.value, truth, 0.35, "4-shard vs truth");
            }
        }
    }
}

/// Contract 3c: the session facade serves join answers identical to the
/// bare engine, and its per-engine cache returns the same bits on a
/// repeat query.
#[test]
fn session_cache_and_serving_preserve_join_answers() {
    let (fact, spec) = fixture(10_000, 8, 4, 700);
    let engine_spec = EngineSpec::join(spec);
    let bare = Engine::build(&fact, &engine_spec).unwrap();

    let mut session = Session::new(fact.clone());
    session.add_engine("join", &engine_spec).unwrap();
    let queries = query_suite();
    for q in &queries {
        let first = session.estimate("join", q).unwrap();
        assert_eq!(first, bare.estimate(q).unwrap(), "facade departs on {q:?}");
        let second = session.estimate("join", q).unwrap();
        assert_eq!(first, second, "cached repeat departs on {q:?}");
    }
    let stats = session.cache_stats("join").unwrap();
    assert!(stats.hits >= queries.len() as u64, "repeats must hit");

    // Served answers come off worker threads; still the same bits.
    let serve = session
        .serve("join", ServeConfig::new().with_workers(2))
        .unwrap();
    for q in &queries {
        let got = serve.submit(q).wait().results().unwrap();
        assert_eq!(got[0], session.estimate("join", q), "served {q:?}");
    }
    serve.shutdown();
}

/// Contract 3d: snapshot round-trips reproduce the engine bit-for-bit —
/// identity, storage (the spec-derived hash index is rebuilt, not
/// shipped), and every answer — through both the raw `Engine` path and
/// the session facade.
#[test]
fn snapshot_round_trip_is_bit_identical() {
    let (fact, spec) = fixture(8_000, 16, 5, 600);
    let engine_spec = EngineSpec::join(spec);
    let original = Engine::build(&fact, &engine_spec).unwrap();
    let mut bytes = Vec::new();
    original.save(&mut bytes).unwrap();
    let loaded = Engine::load(&bytes).unwrap();
    assert_eq!(loaded.name(), original.name());
    assert_eq!(loaded.spec(), original.spec());
    assert_eq!(loaded.dims(), original.dims());
    assert_eq!(loaded.storage_bytes(), original.storage_bytes());
    let queries = query_suite();
    let before: Vec<_> = queries.iter().map(|q| original.estimate(q)).collect();
    let after: Vec<_> = queries.iter().map(|q| loaded.estimate(q)).collect();
    assert_eq!(before, after, "answers drift through the snapshot");

    let mut session = Session::new(fact);
    session.add_engine("join", &engine_spec).unwrap();
    let mut via_session = Vec::new();
    session.save_engine("join", &mut via_session).unwrap();
    session.load_engine("join2", &via_session).unwrap();
    for q in &queries {
        assert_eq!(
            session.estimate("join", q),
            session.estimate("join2", q),
            "session reload departs on {q:?}"
        );
    }
}

/// Contract 4a: a dimension side sharing no keys with the fact side
/// produces the empty join — SUM/COUNT answer exactly 0 ± 0 and AVG is
/// a typed `EmptyInput`, both through the registry path.
#[test]
fn empty_join_answers_zero_or_typed_empty() {
    let fact = uniform(3_000, 5);
    let spec = JoinSpec::new(0, vec![50.0, 60.0], vec![vec![1.0, 2.0]], 400);
    let join = Engine::build(&fact, &EngineSpec::join(spec)).unwrap();
    let rect = Rect::new(&[(f64::NEG_INFINITY, f64::INFINITY); 2]);
    for agg in [AggKind::Sum, AggKind::Count] {
        let est = join.estimate(&Query::new(agg, rect.clone())).unwrap();
        assert_eq!(est.value, 0.0, "{agg}");
        assert_eq!(est.ci_half, 0.0, "{agg}");
    }
    assert!(matches!(
        join.estimate(&Query::new(AggKind::Avg, rect)),
        Err(PassError::EmptyInput(_))
    ));
}

/// Contract 4b: dangling FKs are excluded exactly like an inner join —
/// the whole-space COUNT estimate tracks the matched-row count, not the
/// fact row count.
#[test]
fn dangling_fks_drop_like_an_inner_join() {
    let (fact, spec) = fixture(16_000, 8, 3, 2_000);
    let everything = Rect::new(&[(f64::NEG_INFINITY, f64::INFINITY); 3]);
    let truth = nested_loop_truth(&fact, &spec, AggKind::Count, &everything).unwrap();
    assert!(truth < fact.n_rows() as f64, "fixture must dangle rows");
    let join = Engine::build(&fact, &EngineSpec::join(spec)).unwrap();
    let est = join
        .estimate(&Query::new(AggKind::Count, everything))
        .unwrap();
    assert_rel_close(est.value, truth, 0.1, "dangling COUNT");
}

/// Contract 4c: MIN/MAX are typed `InvalidParameter("agg", ..)`
/// rejections on the direct, batched, sharded, and facade paths alike.
#[test]
fn min_max_are_typed_rejections_on_every_path() {
    let (fact, spec) = fixture(2_000, 4, 0, 300);
    let engine_spec = EngineSpec::join(spec);
    let join = Engine::build(&fact, &engine_spec).unwrap();
    let sharded = Engine::build(
        &fact,
        &EngineSpec::sharded(engine_spec.clone(), ShardPlan::row_range(2)),
    )
    .unwrap();
    let mut session = Session::new(fact);
    session.add_engine("join", &engine_spec).unwrap();
    let rect = Rect::new(&[(0.0, 1.0), (-1.0, 10.0), (0.0, 40.0)]);
    for agg in [AggKind::Min, AggKind::Max] {
        let q = Query::new(agg, rect.clone());
        for (path, result) in [
            ("direct", join.estimate(&q)),
            (
                "batched",
                join.estimate_many(std::slice::from_ref(&q)).remove(0),
            ),
            ("sharded", sharded.estimate(&q)),
            ("session", session.estimate("join", &q)),
        ] {
            assert!(
                matches!(result, Err(PassError::InvalidParameter("agg", _))),
                "{path} {agg}: {result:?}"
            );
        }
    }
}

/// Contract 4d: the zero-truth convention of `Estimate::relative_error`
/// holds for join estimates — a query whose join matches nothing yields
/// a 0-valued estimate with relative error 0 against the 0 truth, while
/// any nonzero estimate against a 0 truth reads ∞ (never NaN).
#[test]
fn zero_truth_relative_error_follows_the_documented_convention() {
    let (fact, spec) = fixture(4_000, 8, 0, 500);
    let join = Engine::build(&fact, &EngineSpec::join(spec.clone())).unwrap();
    // Nothing joins into attr > 1e6, so truth and estimate are both 0.
    let rect = Rect::new(&[(0.0, 1.0), (-1.0, 100.0), (1e6, 1e7)]);
    let q = Query::new(AggKind::Sum, rect.clone());
    assert_eq!(
        nested_loop_truth(&fact, &spec, AggKind::Sum, &rect),
        Some(0.0)
    );
    let est = join.estimate(&q).unwrap();
    assert_eq!(est.value, 0.0);
    assert_eq!(est.relative_error(0.0), 0.0, "0 est vs 0 truth is exact");
    // A nonzero estimate against a zero truth is infinitely wrong.
    let nonzero = Estimate::approximate(5.0, 1.0);
    assert_eq!(nonzero.relative_error(0.0), f64::INFINITY);
    assert!(!nonzero.relative_error(0.0).is_nan());
}

/// `EngineSpec::Join` survives JSON and the registry round-trip, and
/// `with_seed` reaches the embedded spec.
#[test]
fn join_spec_round_trips_through_json_and_registry() {
    let (fact, spec) = fixture(2_000, 8, 0, 250);
    let engine_spec = EngineSpec::join(spec).with_seed(9);
    assert_eq!(engine_spec.seed(), Some(9));
    assert_eq!(engine_spec.kind(), "join");
    let json = engine_spec.to_json();
    assert_eq!(EngineSpec::from_json(&json).unwrap(), engine_spec, "{json}");
    let engine = Engine::build(&fact, &engine_spec).unwrap();
    assert_eq!(engine.spec(), engine_spec);
    assert_eq!(engine.name(), "JOIN");
    // Also through the sharded wrapper: shard 0 keeps the spec verbatim.
    assert_eq!(
        ShardedSynopsis::shard_spec(&engine_spec, 0),
        engine_spec,
        "shard 0 must keep the seed"
    );
    assert_ne!(
        ShardedSynopsis::shard_spec(&engine_spec, 1).seed(),
        engine_spec.seed(),
        "later shards must derive fresh seeds"
    );
}

/// The direct `JoinSynopsis` constructor and the registry agree — the
/// registry adds nothing but dispatch.
#[test]
fn registry_matches_direct_construction() {
    let (fact, spec) = fixture(6_000, 8, 4, 500);
    let direct = JoinSynopsis::build(&fact, &spec).unwrap();
    let via_registry = Engine::build(&fact, &EngineSpec::Join(spec)).unwrap();
    for q in query_suite() {
        assert_eq!(direct.estimate(&q), via_registry.estimate(&q));
    }
    assert_eq!(direct.storage_bytes(), via_registry.storage_bytes());
}
