//! The routed-serving contract (`Session::serve_multi` + the
//! deadline-aware, dedup-capable queue), pinned end to end:
//!
//! 1. **Routed fidelity** — a multi-engine server's answers are
//!    bit-identical to direct `Session` calls *per engine* for the
//!    whole `Engine::standard_suite`, and a batch never mixes engines
//!    (a mixed batch would hand queries to the wrong synopsis, which
//!    the distinguishable-engine test would catch as a wrong value).
//! 2. **EDF scheduling** — within a priority class, completion order
//!    under a paused-then-resumed queue follows the earliest deadline
//!    first; undated requests keep FIFO order after every dated one,
//!    and bit-exact deadline ties preserve FIFO.
//! 3. **Dedup fan-out** — N identical queued queries execute **once**
//!    (proved through the session's cache counters, which every
//!    engine-path query must touch) yet resolve all N tickets, on the
//!    happy path, on shutdown, and on a worker panic.
//! 4. **Compatibility** — single-engine `serve` behavior is unchanged:
//!    dedup stays off unless opted into, identical submissions consume
//!    identical capacity, and the rejection boundary is exact.

use std::time::{Duration, Instant};

use pass::common::{AggKind, Estimate, Priority, Query, RequestQueue, Result as PassResult};
use pass::table::datasets::uniform;
use pass::{
    Engine, EngineSpec, ServeConfig, ServeOutcome, Session, SubmitOptions, Synopsis, Ticket,
};

fn q(lo: f64, hi: f64) -> Query {
    Query::interval(AggKind::Sum, lo, hi)
}

fn suite_queries() -> Vec<Query> {
    let aggs = [
        AggKind::Sum,
        AggKind::Count,
        AggKind::Avg,
        AggKind::Min,
        AggKind::Max,
    ];
    let mut queries = Vec::new();
    for (i, agg) in aggs.iter().enumerate() {
        for j in 0..3 {
            let lo = (i * 3 + j) as f64 / 20.0;
            queries.push(Query::interval(*agg, lo, (lo + 0.3).min(1.0)));
        }
        // A degenerate sliver: some engines answer these with errors,
        // and routed served errors must match direct errors too.
        queries.push(Query::interval(*agg, 0.9999, 0.99995));
    }
    queries
}

/// One routed server over the whole standard suite answers bit-identically
/// to a **separately built** direct session, engine by engine, for single
/// and batched submissions alike.
#[test]
fn multi_engine_served_answers_are_bit_identical_to_direct_per_engine() {
    let queries = suite_queries();
    let specs = Engine::standard_suite(16, 400, 3);
    let mut served = Session::new(uniform(8_000, 11));
    let mut direct = Session::new(uniform(8_000, 11));
    let names: Vec<String> = (0..specs.len()).map(|i| format!("engine-{i}")).collect();
    for (name, spec) in names.iter().zip(&specs) {
        served.add_engine(name, spec).unwrap();
        direct.add_engine(name, spec).unwrap();
    }
    let routes: Vec<&str> = names.iter().map(|n| n.as_str()).collect();
    let serve = served
        .serve_multi(&routes, ServeConfig::new().with_workers(2))
        .unwrap();
    assert_eq!(serve.engines(), routes);
    assert_eq!(
        serve.engine(),
        routes[0],
        "default route is the first engine"
    );

    for (name, spec) in names.iter().zip(&specs) {
        let singles: Vec<Ticket> = queries
            .iter()
            .map(|query| serve.submit_to(name, query).unwrap())
            .collect();
        let batch = serve.submit_batch_to(name, &queries).unwrap();
        for (query, ticket) in queries.iter().zip(&singles) {
            assert_eq!(
                ticket.wait().results().unwrap()[0],
                direct.estimate(name, query),
                "routed single {query:?} on {spec:?}"
            );
        }
        let got = batch.wait().results().unwrap();
        for (query, result) in queries.iter().zip(&got) {
            assert_eq!(
                *result,
                direct.estimate(name, query),
                "routed batch {query:?} on {spec:?}"
            );
        }
    }

    let per_engine_total = (queries.len() + 1) as u64;
    let stats = serve.shutdown();
    assert_eq!(stats.accepted, per_engine_total * names.len() as u64);
    assert_eq!(stats.completed, stats.accepted);
    assert_eq!((stats.rejected, stats.expired, stats.deduped), (0, 0, 0));
    // The per-engine breakdown accounts for every request, in route order.
    assert_eq!(stats.per_engine.len(), names.len());
    for (row, name) in stats.per_engine.iter().zip(&names) {
        assert_eq!(&row.engine, name);
        assert_eq!(row.completed, per_engine_total);
    }
    assert_eq!(
        stats.batches,
        stats.per_engine.iter().map(|e| e.batches).sum::<u64>()
    );
}

/// Two hand-built engines with distinguishable answers: every routed
/// ticket carries its own engine's answer even when requests interleave
/// through one worker — a batch that mixed engines would produce the
/// other engine's constant.
#[test]
fn interleaved_routes_never_mix_engines_in_a_batch() {
    struct Constant(f64);
    impl Synopsis for Constant {
        fn name(&self) -> &str {
            "CONSTANT"
        }
        fn estimate(&self, _query: &Query) -> PassResult<Estimate> {
            Ok(Estimate::exact(self.0))
        }
        fn storage_bytes(&self) -> usize {
            0
        }
        fn dims(&self) -> usize {
            1
        }
    }

    let mut session = Session::new(uniform(100, 1));
    session.add_synopsis("ones", Constant(1.0));
    session.add_synopsis("twos", Constant(2.0));
    let serve = session
        .serve_multi(
            &["ones", "twos"],
            ServeConfig::new()
                .with_workers(1)
                .with_coalesce_max(64)
                .paused(),
        )
        .unwrap();
    let tickets: Vec<(f64, Ticket)> = (0..8)
        .map(|i| {
            let (engine, want) = if i % 2 == 0 {
                ("ones", 1.0)
            } else {
                ("twos", 2.0)
            };
            // Distinct queries so the shared cache cannot mask a
            // wrong-engine execution.
            (
                want,
                serve.submit_to(engine, &q(i as f64 / 10.0, 0.95)).unwrap(),
            )
        })
        .collect();
    serve.resume();
    for (want, ticket) in tickets {
        let got = ticket.wait().results().unwrap();
        assert_eq!(got[0].as_ref().unwrap().value, want);
    }
    let stats = serve.shutdown();
    assert_eq!(stats.completed, 8);
    assert!(
        stats.batches >= 2,
        "two engines cannot share one batch (ran {})",
        stats.batches
    );
    for row in &stats.per_engine {
        assert_eq!(row.completed, 4);
        assert!(row.batches >= 1);
    }
}

/// EDF within a class: queue dated requests out of deadline order plus an
/// undated one behind a paused single worker, resume, and the completion
/// stamps follow deadline order with the undated request last.
#[test]
fn edf_completion_order_within_a_class_under_a_paused_then_resumed_queue() {
    let mut session = Session::new(uniform(5_000, 21));
    session.add_engine("pass", &EngineSpec::pass()).unwrap();
    let serve = session
        .serve("pass", ServeConfig::new().with_workers(1).paused())
        .unwrap();

    // Generous deadlines (nothing expires), submitted far from deadline
    // order; the undated request goes in the middle of the submissions
    // so its last-place completion is schedule policy, not arrival order.
    let by_deadline_secs = [50u64, 10, 30, 20, 40];
    let mut dated: Vec<(u64, Ticket)> = Vec::new();
    let mut undated = None;
    for (i, secs) in by_deadline_secs.iter().enumerate() {
        if i == 2 {
            undated = Some(serve.submit(&q(0.05, 0.85)));
        }
        dated.push((
            *secs,
            serve.submit_with(
                &[q(i as f64 / 10.0, 0.9)],
                &SubmitOptions::interactive().with_deadline(Duration::from_secs(*secs)),
            ),
        ));
    }
    let undated = undated.expect("submitted mid-loop");
    serve.resume();

    let undated_stamp = {
        assert!(undated.wait().is_done());
        undated.completion_index().unwrap()
    };
    let mut stamps: Vec<(u64, u64)> = dated
        .iter()
        .map(|(secs, ticket)| {
            assert!(ticket.wait().is_done());
            (*secs, ticket.completion_index().unwrap())
        })
        .collect();
    stamps.sort_by_key(|(secs, _)| *secs);
    for pair in stamps.windows(2) {
        assert!(
            pair[0].1 < pair[1].1,
            "deadline {}s completed after deadline {}s (stamps {} vs {})",
            pair[0].0,
            pair[1].0,
            pair[0].1,
            pair[1].1
        );
    }
    assert!(
        stamps.iter().all(|&(_, stamp)| stamp < undated_stamp),
        "the undated request must complete after every dated one"
    );
    assert_eq!(serve.shutdown().expired, 0, "nothing expired in this test");
}

/// Bit-exact deadline ties preserve FIFO, at the queue layer where a tie
/// can actually be constructed (one shared `Instant`).
#[test]
fn equal_deadlines_preserve_fifo_order() {
    let queue = RequestQueue::new(8);
    let tie = Some(Instant::now() + Duration::from_secs(5));
    for label in ["first", "second", "third"] {
        queue
            .try_push_scheduled(label, Priority::Interactive, tie)
            .unwrap();
    }
    // A later deadline sorts behind the tie group; an earlier one ahead.
    queue
        .try_push_scheduled(
            "later",
            Priority::Interactive,
            Some(Instant::now() + Duration::from_secs(9)),
        )
        .unwrap();
    queue
        .try_push_scheduled(
            "sooner",
            Priority::Interactive,
            Some(Instant::now() + Duration::from_secs(1)),
        )
        .unwrap();
    for want in ["sooner", "first", "second", "third", "later"] {
        assert_eq!(queue.pop_blocking(), Some((want, Priority::Interactive)));
    }
}

/// An expired-at-pop request never blocks a live later one: the doomed
/// request (which EDF schedules *first*) resolves `Expired` without
/// executing, and the live request behind it completes normally.
#[test]
fn expired_at_pop_request_never_blocks_a_live_later_one() {
    let mut session = Session::new(uniform(5_000, 23));
    session.add_engine("pass", &EngineSpec::pass()).unwrap();
    let serve = session
        .serve("pass", ServeConfig::new().with_workers(1).paused())
        .unwrap();
    let doomed = serve.submit_with(
        &[q(0.3, 0.7)],
        &SubmitOptions::interactive().with_deadline(Duration::ZERO),
    );
    let live = serve.submit(&q(0.2, 0.8));
    let before = session.cache_stats("pass").unwrap();
    serve.resume();

    assert_eq!(doomed.wait(), ServeOutcome::Expired);
    assert_eq!(doomed.completion_index(), None);
    let got = live.wait().results().unwrap();
    assert_eq!(
        got[0].as_ref().unwrap().value,
        session.estimate("pass", &q(0.2, 0.8)).unwrap().value
    );

    let stats = serve.shutdown();
    assert_eq!((stats.expired, stats.completed), (1, 1));
    // Cache-counter proof: only the live query reached the engine path
    // before the direct comparison call above.
    let delta = session.cache_stats("pass").unwrap().since(&before);
    assert_eq!(delta.hits + delta.misses, 2, "live query + direct call");
}

/// N identical queued queries execute once — proved through the session
/// cache counters — yet resolve all N tickets with the engine's answer.
#[test]
fn identical_queued_queries_execute_once_yet_resolve_every_ticket() {
    let mut served = Session::new(uniform(8_000, 31));
    let mut direct = Session::new(uniform(8_000, 31));
    served.add_engine("pass", &EngineSpec::pass()).unwrap();
    direct.add_engine("pass", &EngineSpec::pass()).unwrap();
    let serve = served
        .serve(
            "pass",
            ServeConfig::new().with_workers(1).with_dedup().paused(),
        )
        .unwrap();

    let n = 6;
    let tickets: Vec<Ticket> = (0..n)
        .map(|i| {
            // Mixed submission styles, same bit-exact query.
            if i % 2 == 0 {
                serve.submit(&q(0.25, 0.75))
            } else {
                serve.submit_with(&[q(0.25, 0.75)], &SubmitOptions::interactive())
            }
        })
        .collect();
    assert_eq!(serve.queue_depth(), 1, "duplicates attached to one request");
    let before = served.cache_stats("pass").unwrap();
    serve.resume();

    let want = direct.estimate("pass", &q(0.25, 0.75)).unwrap().value;
    for ticket in &tickets {
        let got = ticket.wait().results().unwrap();
        assert_eq!(got[0].as_ref().unwrap().value, want);
        assert!(ticket.completion_index().is_some());
    }
    // Cache-counter proof: one engine-path lookup for N tickets.
    let delta = served.cache_stats("pass").unwrap().since(&before);
    assert_eq!(delta.hits + delta.misses, 1, "the batch executed once");

    let stats = serve.shutdown();
    assert_eq!(stats.accepted, n as u64);
    assert_eq!(stats.completed, n as u64);
    assert_eq!(stats.deduped, n as u64 - 1);
    assert_eq!(stats.batches, 1);
    assert_eq!(stats.queue_high_water, 1);
    assert_eq!(stats.per_engine[0].deduped, n as u64 - 1);
}

/// Shutdown drains a deduplicated request like any other: every attached
/// ticket resolves exactly once, with the shared answer.
#[test]
fn dedup_fanout_resolves_every_ticket_on_shutdown() {
    let mut session = Session::new(uniform(5_000, 37));
    session.add_engine("pass", &EngineSpec::pass()).unwrap();
    let serve = session
        .serve(
            "pass",
            ServeConfig::new().with_workers(1).with_dedup().paused(),
        )
        .unwrap();
    let tickets: Vec<Ticket> = (0..4).map(|_| serve.submit(&q(0.1, 0.9))).collect();
    // Never resumed: shutdown itself must drain the attached request.
    let stats = serve.shutdown();
    for ticket in &tickets {
        assert!(ticket.wait().is_done());
    }
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.deduped, 3);
}

/// A worker panic mid-execution cancels — exactly once, never hangs —
/// every ticket attached to the in-flight deduplicated request.
#[test]
fn dedup_fanout_resolves_every_ticket_on_worker_panic() {
    struct Panicking;
    impl Synopsis for Panicking {
        fn name(&self) -> &str {
            "PANICKING"
        }
        fn estimate(&self, _query: &Query) -> PassResult<Estimate> {
            panic!("engine failure injected by route_contract");
        }
        fn storage_bytes(&self) -> usize {
            0
        }
        fn dims(&self) -> usize {
            1
        }
    }

    let mut session = Session::new(uniform(100, 41));
    session.add_synopsis("boom", Panicking);
    let serve = session
        .serve(
            "boom",
            ServeConfig::new().with_workers(1).with_dedup().paused(),
        )
        .unwrap();
    let tickets: Vec<Ticket> = (0..4).map(|_| serve.submit(&q(0.2, 0.8))).collect();
    assert_eq!(serve.queue_depth(), 1);
    serve.resume();
    // The worker unwinds; dropping the in-flight request's ticket slots
    // resolves every waiter to Cancelled — no client ever hangs on a
    // request the server lost.
    for ticket in &tickets {
        assert_eq!(
            ticket.wait_timeout(Duration::from_secs(30)),
            Some(ServeOutcome::Cancelled)
        );
    }
    let stats = serve.shutdown();
    assert_eq!(stats.accepted, 4);
    assert_eq!(stats.deduped, 3);
    assert_eq!(stats.completed, 0);
}

/// Single-engine `serve` is byte-for-byte the PR 4 contract: no dedup
/// unless opted in (identical submissions consume identical capacity and
/// all reach the cache), the rejection boundary stays exact, and answers
/// match direct calls bit for bit.
#[test]
fn single_engine_serve_behavior_is_unchanged_by_default() {
    let mut served = Session::new(uniform(8_000, 51));
    let mut direct = Session::new(uniform(8_000, 51));
    served.add_engine("pass", &EngineSpec::pass()).unwrap();
    direct.add_engine("pass", &EngineSpec::pass()).unwrap();
    let depth = 4;
    let serve = served
        .serve(
            "pass",
            ServeConfig::new()
                .with_workers(1)
                .with_queue_depth(depth)
                .paused(),
        )
        .unwrap();

    // Identical submissions occupy one slot each — no silent dedup.
    let accepted: Vec<Ticket> = (0..depth).map(|_| serve.submit(&q(0.25, 0.75))).collect();
    assert_eq!(serve.queue_depth(), depth);
    let rejected = serve.submit(&q(0.25, 0.75));
    assert_eq!(rejected.poll(), Some(ServeOutcome::Rejected));

    let before = served.cache_stats("pass").unwrap();
    serve.resume();
    let want = direct.estimate("pass", &q(0.25, 0.75)).unwrap().value;
    for ticket in &accepted {
        let got = ticket.wait().results().unwrap();
        assert_eq!(got[0].as_ref().unwrap().value, want);
    }
    // Every accepted request consulted the cache: 1 miss + depth-1 hits.
    let delta = served.cache_stats("pass").unwrap().since(&before);
    assert_eq!(delta.hits + delta.misses, depth as u64);

    let stats = serve.shutdown();
    assert_eq!(stats.accepted, depth as u64);
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.deduped, 0);
    assert_eq!(stats.queue_high_water, depth);
    // Shed load is attributed to the engine whose traffic caused it.
    assert_eq!(stats.per_engine[0].rejected, 1);
}
